//! Reified protocol state machines.
//!
//! This is the *data-level* embedding of the paper's item (ii): states,
//! events, guarded transitions and bounded integer variables, all as plain
//! values. Unlike the [`crate::typestate`] embedding (where soundness is a
//! compile-time property), a reified [`Spec`] can be **analysed**: the
//! model checker in `netdsl-verify` enumerates its entire state space to
//! prove soundness, completeness and consistent termination — on the same
//! object the interpreter executes, closing the model/implementation gap
//! the paper criticises in §3.3 ("there may be errors in transcription
//! between the model and the implementation").
//!
//! Guards and effects are a tiny total expression language ([`Expr`])
//! rather than host-language closures precisely so that the checker can
//! evaluate them exhaustively.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::DslError;

/// Index of a state within its [`Spec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StateId(pub usize);

/// Index of an event within its [`Spec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventId(pub usize);

/// Index of a variable within its [`Spec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub usize);

/// A total expression over the machine's variables.
///
/// Semantics: expressions evaluate to `u64`; comparisons and logical
/// operators yield 0/1. Arithmetic is **modular**: each `Add`/`Sub` node
/// wraps modulo the narrowest domain (`max + 1`) among the variables its
/// subtree reads, or modulo 2⁶⁴ when it reads none (see
/// [`Expr::arith_modulus`]). This makes sequence arithmetic observable
/// *inside guards*: `seq + 1 == 0` in an 8-bit domain is true exactly at
/// `seq == 255` — the paper's `Ready (seq+1)` wrap. (An earlier revision
/// saturated during evaluation but wrapped on assignment, so a guard
/// could never see the wrap an effect was about to perform.) Assignment
/// additionally reduces the final value modulo the *target* variable's
/// domain, which is the identity whenever the expression already wrapped
/// in that domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expr {
    /// A variable's current value.
    Var(String),
    /// A literal.
    Const(u64),
    /// Addition, wrapping modulo the node's [`Expr::arith_modulus`].
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction, wrapping modulo the node's [`Expr::arith_modulus`]
    /// (so `0 - 1` evaluates to `m - 1`, never saturates).
    Sub(Box<Expr>, Box<Expr>),
    /// Equality (1/0).
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality (1/0).
    Ne(Box<Expr>, Box<Expr>),
    /// Less-than (1/0).
    Lt(Box<Expr>, Box<Expr>),
    /// Less-or-equal (1/0).
    Le(Box<Expr>, Box<Expr>),
    /// Logical and (operands non-zero).
    And(Box<Expr>, Box<Expr>),
    /// Logical or.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
}

impl Expr {
    /// Shorthand: variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// Evaluates against a name→value environment with every variable
    /// treated as unbounded (domain `0..=u64::MAX`), so arithmetic wraps
    /// modulo 2⁶⁴. Spec execution uses [`Expr::eval_with`] with the
    /// declared domains instead; this entry point exists for expression
    /// tests and tooling that have no spec at hand.
    ///
    /// # Errors
    ///
    /// [`DslError::UnknownName`] for unresolved variables.
    pub fn eval(&self, env: &BTreeMap<String, u64>) -> Result<u64, DslError> {
        self.eval_with(&|n| env.get(n).map(|v| (*v, u64::MAX)))
    }

    /// Evaluates against a lookup returning `(value, domain max)` per
    /// variable — **the** expression semantics, shared verbatim by the
    /// tree-walking [`Machine`] and (via precomputed moduli) the compiled
    /// stepper in [`crate::fsm_compiled`]. Each arithmetic node wraps
    /// modulo [`Expr::arith_modulus`] of its own subtree.
    ///
    /// # Errors
    ///
    /// [`DslError::UnknownName`] when `lookup` returns `None`.
    pub fn eval_with(&self, lookup: &dyn Fn(&str) -> Option<(u64, u64)>) -> Result<u64, DslError> {
        Ok(match self {
            Expr::Var(n) => {
                lookup(n)
                    .ok_or_else(|| DslError::UnknownName { name: n.clone() })?
                    .0
            }
            Expr::Const(c) => *c,
            Expr::Add(a, b) => {
                let m = self.arith_modulus(&|n| lookup(n).map(|(_, max)| max))?;
                let va = u128::from(a.eval_with(lookup)?) % m;
                let vb = u128::from(b.eval_with(lookup)?) % m;
                ((va + vb) % m) as u64
            }
            Expr::Sub(a, b) => {
                let m = self.arith_modulus(&|n| lookup(n).map(|(_, max)| max))?;
                let va = u128::from(a.eval_with(lookup)?) % m;
                let vb = u128::from(b.eval_with(lookup)?) % m;
                ((va + m - vb) % m) as u64
            }
            Expr::Eq(a, b) => u64::from(a.eval_with(lookup)? == b.eval_with(lookup)?),
            Expr::Ne(a, b) => u64::from(a.eval_with(lookup)? != b.eval_with(lookup)?),
            Expr::Lt(a, b) => u64::from(a.eval_with(lookup)? < b.eval_with(lookup)?),
            Expr::Le(a, b) => u64::from(a.eval_with(lookup)? <= b.eval_with(lookup)?),
            Expr::And(a, b) => u64::from(a.eval_with(lookup)? != 0 && b.eval_with(lookup)? != 0),
            Expr::Or(a, b) => u64::from(a.eval_with(lookup)? != 0 || b.eval_with(lookup)? != 0),
            Expr::Not(a) => u64::from(a.eval_with(lookup)? == 0),
        })
    }

    /// The wrap modulus of an arithmetic node: the smallest `max + 1`
    /// among the variables the node's subtree reads, or 2⁶⁴ when it
    /// reads none (hence the `u128` return — 2⁶⁴ must be representable).
    /// The *narrowest* domain governs because that is the space the
    /// result will live in: `seq + 1` over an 8-bit `seq` means 8-bit
    /// arithmetic, exactly as the assignment that consumes it.
    ///
    /// # Errors
    ///
    /// [`DslError::UnknownName`] when `max_of` cannot resolve a variable.
    pub fn arith_modulus(&self, max_of: &dyn Fn(&str) -> Option<u64>) -> Result<u128, DslError> {
        let mut m: u128 = 1 << 64;
        for v in self.variables() {
            let max = max_of(v).ok_or_else(|| DslError::UnknownName {
                name: v.to_string(),
            })?;
            m = m.min(u128::from(max) + 1);
        }
        Ok(m)
    }

    /// Names of the variables this expression reads.
    pub fn variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Var(n) => out.push(n),
            Expr::Const(_) => {}
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Eq(a, b)
            | Expr::Ne(a, b)
            | Expr::Lt(a, b)
            | Expr::Le(a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Not(a) => a.collect_vars(out),
        }
    }
}

/// One state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateDef {
    /// State name, unique within the spec.
    pub name: String,
    /// Terminal states are valid end points: the consistent-termination
    /// property requires every run to be able to reach one (the paper's
    /// §3.4 item 4: "sending … ends in a consistent state").
    pub terminal: bool,
}

/// One event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventDef {
    /// Event name, unique within the spec.
    pub name: String,
}

/// One bounded variable: domain `0..=max`, starting at `init`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarDef {
    /// Variable name, unique within the spec.
    pub name: String,
    /// Inclusive upper bound of the domain.
    pub max: u64,
    /// Initial value.
    pub init: u64,
}

/// One guarded transition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitionDef {
    /// Source state.
    pub from: StateId,
    /// Triggering event.
    pub event: EventId,
    /// Enabling condition (absent = always enabled).
    pub guard: Option<Expr>,
    /// Destination state.
    pub to: StateId,
    /// Variable updates `(name, expression)`, applied simultaneously
    /// (right-hand sides all read the pre-transition valuation). Results
    /// wrap modulo `max + 1` of the target variable.
    pub effects: Vec<(String, Expr)>,
}

/// A complete reified state-machine specification.
///
/// Build with [`Spec::builder`]; execute with [`Machine`]; verify with
/// `netdsl-verify`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Spec {
    name: String,
    states: Vec<StateDef>,
    events: Vec<EventDef>,
    vars: Vec<VarDef>,
    transitions: Vec<TransitionDef>,
    initial: StateId,
}

impl Spec {
    /// Starts building a spec.
    pub fn builder(name: &str) -> SpecBuilder {
        SpecBuilder {
            name: name.to_string(),
            states: Vec::new(),
            events: Vec::new(),
            vars: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// The spec's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All states.
    pub fn states(&self) -> &[StateDef] {
        &self.states
    }

    /// All events.
    pub fn events(&self) -> &[EventDef] {
        &self.events
    }

    /// All variables.
    pub fn vars(&self) -> &[VarDef] {
        &self.vars
    }

    /// All transitions.
    pub fn transitions(&self) -> &[TransitionDef] {
        &self.transitions
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Resolves a state name.
    pub fn state_id(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|s| s.name == name).map(StateId)
    }

    /// Resolves an event name.
    pub fn event_id(&self, name: &str) -> Option<EventId> {
        self.events.iter().position(|e| e.name == name).map(EventId)
    }

    /// A state's name.
    pub fn state_name(&self, id: StateId) -> &str {
        &self.states[id.0].name
    }

    /// An event's name.
    pub fn event_name(&self, id: EventId) -> &str {
        &self.events[id.0].name
    }

    /// Graphviz `dot` rendering of the transition structure. Spec,
    /// state and event names are escaped, so names containing `"` or
    /// `\` still produce valid `dot`.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", dot_escape(&self.name));
        for (i, s) in self.states.iter().enumerate() {
            let shape = if s.terminal { "doublecircle" } else { "circle" };
            let _ = writeln!(
                out,
                "  s{i} [label=\"{}\", shape={shape}];",
                dot_escape(&s.name)
            );
        }
        let _ = writeln!(out, "  init [shape=point];");
        let _ = writeln!(out, "  init -> s{};", self.initial.0);
        for t in &self.transitions {
            let guard = t.guard.as_ref().map(|_| " [guarded]").unwrap_or("");
            let _ = writeln!(
                out,
                "  s{} -> s{} [label=\"{}{}\"];",
                t.from.0,
                t.to.0,
                dot_escape(&self.events[t.event.0].name),
                guard
            );
        }
        out.push_str("}\n");
        out
    }

    /// Pairs of transition indices with the same `(from, event)` —
    /// candidates for runtime nondeterminism. [`SpecBuilder::build`]
    /// already rejects pairs that *certainly* overlap (unguarded or
    /// syntactically equal guards), so anything listed here overlaps only
    /// for valuations where both guards happen to hold; the interpreter
    /// and the compiled stepper both surface that case as
    /// [`DslError::Nondeterministic`] rather than tie-breaking. Useful as
    /// a lint: an empty list means no event can ever be ambiguous.
    pub fn overlap_candidates(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, a) in self.transitions.iter().enumerate() {
            for (j, b) in self.transitions.iter().enumerate().take(i) {
                if a.from == b.from && a.event == b.event {
                    out.push((j, i));
                }
            }
        }
        out
    }
}

/// Escapes a string for use inside a double-quoted Graphviz label.
fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A transition as declared on the builder, still by name:
/// `(from, event, guard, to, effects)`.
type PendingTransition = (String, String, Option<Expr>, String, Vec<(String, Expr)>);

/// Builder for [`Spec`].
#[derive(Debug)]
pub struct SpecBuilder {
    name: String,
    states: Vec<StateDef>,
    events: Vec<EventDef>,
    vars: Vec<VarDef>,
    transitions: Vec<PendingTransition>,
}

impl SpecBuilder {
    /// Declares a non-terminal state. The first declared state is initial.
    #[must_use]
    pub fn state(mut self, name: &str) -> Self {
        self.states.push(StateDef {
            name: name.to_string(),
            terminal: false,
        });
        self
    }

    /// Declares a terminal state.
    #[must_use]
    pub fn terminal(mut self, name: &str) -> Self {
        self.states.push(StateDef {
            name: name.to_string(),
            terminal: true,
        });
        self
    }

    /// Declares an event.
    #[must_use]
    pub fn event(mut self, name: &str) -> Self {
        self.events.push(EventDef {
            name: name.to_string(),
        });
        self
    }

    /// Declares a bounded variable with domain `0..=max`, initially `init`.
    #[must_use]
    pub fn var(mut self, name: &str, max: u64, init: u64) -> Self {
        self.vars.push(VarDef {
            name: name.to_string(),
            max,
            init,
        });
        self
    }

    /// Adds an unguarded transition with no effects.
    #[must_use]
    pub fn transition(self, from: &str, event: &str, to: &str) -> Self {
        self.transition_full(from, event, to, None, Vec::new())
    }

    /// Adds a transition with an optional guard and variable effects.
    #[must_use]
    pub fn transition_full(
        mut self,
        from: &str,
        event: &str,
        to: &str,
        guard: Option<Expr>,
        effects: Vec<(String, Expr)>,
    ) -> Self {
        self.transitions.push((
            from.to_string(),
            event.to_string(),
            guard,
            to.to_string(),
            effects,
        ));
        self
    }

    /// Validates and produces the spec.
    ///
    /// Determinism contract: two transitions may share a `(from, event)`
    /// pair only if their guards can *distinguish* them. Pairs that
    /// certainly overlap — either transition unguarded, or both guards
    /// syntactically identical — are rejected here; pairs whose distinct
    /// guards happen to both hold at some valuation are legal to build
    /// but surface as [`DslError::Nondeterministic`] when executed there
    /// (never resolved by declaration order), so every engine over the
    /// spec provably agrees. [`Spec::overlap_candidates`] lists the
    /// residual candidates.
    ///
    /// # Errors
    ///
    /// [`DslError::BadSpec`] when names are duplicated/empty, there are
    /// no states, or two transitions certainly overlap;
    /// [`DslError::UnknownName`] when a transition, guard or
    /// effect references an undeclared state/event/variable;
    /// [`DslError::DomainViolation`] when a variable's `init` exceeds its
    /// `max`.
    pub fn build(self) -> Result<Spec, DslError> {
        let bad = |reason: String| DslError::BadSpec {
            spec: self.name.clone(),
            reason,
        };
        if self.states.is_empty() {
            return Err(bad("a spec needs at least one state".into()));
        }
        let mut seen = std::collections::BTreeSet::new();
        for s in &self.states {
            if s.name.is_empty() || !seen.insert(format!("s:{}", s.name)) {
                return Err(bad(format!("duplicate or empty state `{}`", s.name)));
            }
        }
        for e in &self.events {
            if e.name.is_empty() || !seen.insert(format!("e:{}", e.name)) {
                return Err(bad(format!("duplicate or empty event `{}`", e.name)));
            }
        }
        for v in &self.vars {
            if v.name.is_empty() || !seen.insert(format!("v:{}", v.name)) {
                return Err(bad(format!("duplicate or empty variable `{}`", v.name)));
            }
            if v.init > v.max {
                return Err(DslError::DomainViolation {
                    var: v.name.clone(),
                    value: v.init,
                    max: v.max,
                });
            }
        }
        let state_id = |n: &str| {
            self.states
                .iter()
                .position(|s| s.name == n)
                .map(StateId)
                .ok_or(DslError::UnknownName {
                    name: n.to_string(),
                })
        };
        let event_id = |n: &str| {
            self.events
                .iter()
                .position(|e| e.name == n)
                .map(EventId)
                .ok_or(DslError::UnknownName {
                    name: n.to_string(),
                })
        };
        let var_exists = |n: &str| self.vars.iter().any(|v| v.name == n);

        let mut transitions = Vec::with_capacity(self.transitions.len());
        for (from, event, guard, to, effects) in &self.transitions {
            if let Some(g) = guard {
                for v in g.variables() {
                    if !var_exists(v) {
                        return Err(DslError::UnknownName {
                            name: v.to_string(),
                        });
                    }
                }
            }
            for (target, expr) in effects {
                if !var_exists(target) {
                    return Err(DslError::UnknownName {
                        name: target.clone(),
                    });
                }
                for v in expr.variables() {
                    if !var_exists(v) {
                        return Err(DslError::UnknownName {
                            name: v.to_string(),
                        });
                    }
                }
            }
            transitions.push(TransitionDef {
                from: state_id(from)?,
                event: event_id(event)?,
                guard: guard.clone(),
                to: state_id(to)?,
                effects: effects.clone(),
            });
        }
        // Reject *certain* nondeterminism: same (from, event) where no
        // valuation can tell the transitions apart. Distinct guards may
        // still overlap for some valuations; that residue is detected at
        // execution time (Nondeterministic), never tie-broken.
        for (i, a) in transitions.iter().enumerate() {
            for b in transitions.iter().take(i) {
                if a.from != b.from || a.event != b.event {
                    continue;
                }
                let certain = match (&a.guard, &b.guard) {
                    (None, _) | (_, None) => true,
                    (Some(x), Some(y)) => x == y,
                };
                if certain {
                    return Err(bad(format!(
                        "transitions from `{}` on `{}` always overlap \
                         (unguarded or identical guards); guards must be \
                         able to distinguish same-(state, event) transitions",
                        self.states[a.from.0].name, self.events[a.event.0].name
                    )));
                }
            }
        }
        Ok(Spec {
            name: self.name,
            states: self.states,
            events: self.events,
            vars: self.vars,
            transitions,
            initial: StateId(0),
        })
    }
}

/// A concrete configuration of a machine: control state + variable
/// valuation. Used both by the interpreter and the model checker.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Config {
    /// Control state.
    pub state: StateId,
    /// Variable values, in declaration order.
    pub vars: Vec<u64>,
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}{:?}", self.state.0, self.vars)
    }
}

/// An executable instance of a [`Spec`] — the machine `execTrans` steps.
#[derive(Debug, Clone)]
pub struct Machine<'s> {
    spec: &'s Spec,
    config: Config,
}

impl<'s> Machine<'s> {
    /// Creates a machine in the spec's initial configuration.
    pub fn new(spec: &'s Spec) -> Self {
        Machine {
            spec,
            config: Config {
                state: spec.initial(),
                vars: spec.vars().iter().map(|v| v.init).collect(),
            },
        }
    }

    /// Creates a machine at an arbitrary configuration (used by the model
    /// checker to explore the full space).
    ///
    /// # Errors
    ///
    /// [`DslError::DomainViolation`] if a value exceeds its domain;
    /// [`DslError::BadSpec`] if the shape doesn't match the spec.
    pub fn at(spec: &'s Spec, config: Config) -> Result<Self, DslError> {
        if config.vars.len() != spec.vars().len() || config.state.0 >= spec.states().len() {
            return Err(DslError::BadSpec {
                spec: spec.name().to_string(),
                reason: "configuration shape does not match spec".into(),
            });
        }
        for (v, def) in config.vars.iter().zip(spec.vars()) {
            if *v > def.max {
                return Err(DslError::DomainViolation {
                    var: def.name.clone(),
                    value: *v,
                    max: def.max,
                });
            }
        }
        Ok(Machine { spec, config })
    }

    /// The spec this machine runs.
    pub fn spec(&self) -> &'s Spec {
        self.spec
    }

    /// Current configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Current control state.
    pub fn state(&self) -> StateId {
        self.config.state
    }

    /// `true` if the current state is terminal.
    pub fn is_terminal(&self) -> bool {
        self.spec.states()[self.config.state.0].terminal
    }

    /// Current value of a variable.
    ///
    /// # Errors
    ///
    /// [`DslError::UnknownName`] for undeclared variables.
    pub fn var(&self, name: &str) -> Result<u64, DslError> {
        self.spec
            .vars()
            .iter()
            .position(|v| v.name == name)
            .map(|i| self.config.vars[i])
            .ok_or(DslError::UnknownName {
                name: name.to_string(),
            })
    }

    /// The machine's variable lookup: `(value, domain max)` by name, the
    /// shape [`Expr::eval_with`] wants. Declared domains flow into
    /// arithmetic here, so guards see the same modular semantics as the
    /// effects that assign into those domains.
    fn lookup(&self, name: &str) -> Option<(u64, u64)> {
        self.spec
            .vars()
            .iter()
            .position(|v| v.name == name)
            .map(|i| (self.config.vars[i], self.spec.vars()[i].max))
    }

    /// Indices of transitions enabled for `event` in the current
    /// configuration.
    ///
    /// # Errors
    ///
    /// Guard evaluation errors propagate (unknown variables cannot occur
    /// in built specs).
    pub fn enabled(&self, event: EventId) -> Result<Vec<usize>, DslError> {
        let mut out = Vec::new();
        for (i, t) in self.spec.transitions().iter().enumerate() {
            if t.from != self.config.state || t.event != event {
                continue;
            }
            let pass = match &t.guard {
                None => true,
                Some(g) => g.eval_with(&|n| self.lookup(n))? != 0,
            };
            if pass {
                out.push(i);
            }
        }
        Ok(out)
    }

    /// Applies `event`: the **soundness** core. Exactly one transition
    /// must be enabled; its effects run and the state advances.
    ///
    /// # Errors
    ///
    /// * [`DslError::NoTransition`] — no enabled transition (the event is
    ///   invalid here; the machine is left unchanged);
    /// * [`DslError::Nondeterministic`] — more than one enabled (spec
    ///   bug, surfaced rather than resolved arbitrarily);
    /// * [`DslError::DomainViolation`] cannot occur: effects wrap into
    ///   the target domain by construction.
    pub fn apply(&mut self, event: EventId) -> Result<StateId, DslError> {
        let enabled = self.enabled(event)?;
        let idx = match enabled.as_slice() {
            [] => {
                return Err(DslError::NoTransition {
                    state: self.spec.state_name(self.config.state).to_string(),
                    event: self.spec.event_name(event).to_string(),
                })
            }
            [one] => *one,
            _ => {
                return Err(DslError::Nondeterministic {
                    state: self.spec.state_name(self.config.state).to_string(),
                    event: self.spec.event_name(event).to_string(),
                })
            }
        };
        let t = &self.spec.transitions()[idx];
        // Simultaneous assignment: all RHS evaluated against the pre-state.
        let mut new_vars = self.config.vars.clone();
        for (target, expr) in &t.effects {
            let pos = self
                .spec
                .vars()
                .iter()
                .position(|v| v.name == *target)
                .expect("validated at build");
            let max = self.spec.vars()[pos].max;
            let raw = expr.eval_with(&|n| self.lookup(n))?;
            new_vars[pos] = match max.checked_add(1) {
                Some(m) => raw % m,
                None => raw, // domain is all of u64: nothing to reduce
            };
        }
        self.config.vars = new_vars;
        self.config.state = t.to;
        Ok(t.to)
    }

    /// Applies an event by name.
    ///
    /// # Errors
    ///
    /// [`DslError::UnknownName`] for unknown events, otherwise as
    /// [`Machine::apply`].
    pub fn apply_named(&mut self, event: &str) -> Result<StateId, DslError> {
        let id = self.spec.event_id(event).ok_or(DslError::UnknownName {
            name: event.to_string(),
        })?;
        self.apply(id)
    }
}

/// The paper's §3.4 sender machine, reified: states `Ready`, `Wait`,
/// `Timeout`, `Sent`; events `SEND`, `OK`, `FAIL`, `TIMEOUT`, `FINISH`;
/// an 8-bit-style sequence variable (domain configurable for model
/// checking).
///
/// Used as a fixture across tests, benches and the verify crate.
pub fn paper_sender_spec(seq_max: u64) -> Spec {
    Spec::builder("paper-arq-sender")
        .state("Ready")
        .state("Wait")
        .state("Timeout")
        .terminal("Sent")
        .event("SEND")
        .event("OK")
        .event("FAIL")
        .event("TIMEOUT")
        .event("FINISH")
        .event("RETRY")
        .var("seq", seq_max, 0)
        // SEND : ListByte → SendTrans (Ready seq) (Wait seq)
        .transition("Ready", "SEND", "Wait")
        // OK : ChkPacket … → SendTrans (Wait seq) (Ready (seq+1))
        .transition_full(
            "Wait",
            "OK",
            "Ready",
            None,
            vec![(
                "seq".to_string(),
                Expr::Add(Box::new(Expr::var("seq")), Box::new(Expr::Const(1))),
            )],
        )
        // FAIL : SendTrans (Wait seq) (Ready seq)
        .transition("Wait", "FAIL", "Ready")
        // TIMEOUT : SendTrans (Wait seq) (Timeout seq)
        .transition("Wait", "TIMEOUT", "Timeout")
        // FINISH : SendTrans (Ready seq) (Sent seq)
        .transition("Ready", "FINISH", "Sent")
        // Recovery from Timeout back to Ready (so the machine can retry;
        // the paper's NextSent Failure arm hands back a Timeout machine).
        .transition("Timeout", "RETRY", "Ready")
        .build()
        .expect("paper sender spec is well-formed")
}

/// The paper's §3.4 receiver: a single `ReadyFor` state whose sequence
/// variable advances on `RECV` of a checksum-valid packet.
pub fn paper_receiver_spec(seq_max: u64) -> Spec {
    Spec::builder("paper-arq-receiver")
        .state("ReadyFor")
        .event("RECV")
        .event("REJECT")
        .var("seq", seq_max, 0)
        .transition_full(
            "ReadyFor",
            "RECV",
            "ReadyFor",
            None,
            vec![(
                "seq".to_string(),
                Expr::Add(Box::new(Expr::var("seq")), Box::new(Expr::Const(1))),
            )],
        )
        .transition("ReadyFor", "REJECT", "ReadyFor")
        .build()
        .expect("paper receiver spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_evaluation() {
        let mut env = BTreeMap::new();
        env.insert("x".to_string(), 5u64);
        let e = Expr::Add(Box::new(Expr::var("x")), Box::new(Expr::Const(3)));
        assert_eq!(e.eval(&env).unwrap(), 8);
        let cmp = Expr::Lt(Box::new(Expr::var("x")), Box::new(Expr::Const(3)));
        assert_eq!(cmp.eval(&env).unwrap(), 0);
        let logic = Expr::Or(
            Box::new(Expr::Not(Box::new(Expr::Const(0)))),
            Box::new(Expr::Const(0)),
        );
        assert_eq!(logic.eval(&env).unwrap(), 1);
        assert!(Expr::var("ghost").eval(&env).is_err());
        let sub = Expr::Sub(Box::new(Expr::Const(1)), Box::new(Expr::Const(5)));
        assert_eq!(
            sub.eval(&env).unwrap(),
            u64::MAX - 3,
            "variable-free arithmetic wraps modulo 2^64, it never saturates"
        );
    }

    #[test]
    fn arithmetic_wraps_in_the_narrowest_variable_domain() {
        // `x - 1` with x = 0 over 0..=7 is 7: the subtraction happens in
        // x's own domain. The old semantics saturated to 0 and only
        // wrapped on assignment, so guards could never observe the wrap.
        let max_of = |max: u64| move |n: &str| (n == "x").then_some((0u64, max));
        let sub = Expr::Sub(Box::new(Expr::var("x")), Box::new(Expr::Const(1)));
        assert_eq!(sub.eval_with(&max_of(7)).unwrap(), 7);
        assert_eq!(sub.eval_with(&max_of(u64::MAX)).unwrap(), u64::MAX);
        // The narrowest domain among the operands governs: x + 3 with
        // x = 3 over 0..=3 is (3 + 3) mod 4 = 2.
        let add = Expr::Add(Box::new(Expr::var("x")), Box::new(Expr::Const(3)));
        let lookup = |n: &str| (n == "x").then_some((3u64, 3u64));
        assert_eq!(add.eval_with(&lookup).unwrap(), 2);
        assert_eq!(add.arith_modulus(&|_| Some(3)).unwrap(), 4);
        assert_eq!(
            Expr::Const(9).arith_modulus(&|_| None).unwrap(),
            1u128 << 64,
            "no variables read: full u64 arithmetic"
        );
    }

    #[test]
    fn guard_observes_domain_wrap() {
        // Regression for the saturate-vs-wrap mismatch: a guard
        // `seq + 1 == 0` in an 8-bit domain must fire exactly when the
        // effect `seq + 1` is about to wrap to 0.
        let wrap_guard = Expr::Eq(
            Box::new(Expr::Add(
                Box::new(Expr::var("seq")),
                Box::new(Expr::Const(1)),
            )),
            Box::new(Expr::Const(0)),
        );
        let spec = Spec::builder("wrap")
            .state("A")
            .state("Wrapped")
            .event("TICK")
            .var("seq", 255, 255)
            .transition_full("A", "TICK", "Wrapped", Some(wrap_guard.clone()), vec![])
            .transition_full(
                "A",
                "TICK",
                "A",
                Some(Expr::Not(Box::new(wrap_guard))),
                vec![(
                    "seq".to_string(),
                    Expr::Add(Box::new(Expr::var("seq")), Box::new(Expr::Const(1))),
                )],
            )
            .build()
            .unwrap();
        let mut m = Machine::new(&spec);
        m.apply_named("TICK").unwrap();
        assert_eq!(
            spec.state_name(m.state()),
            "Wrapped",
            "seq = 255: the guard sees (255 + 1) mod 256 == 0"
        );
        let mut low = Machine::at(
            &spec,
            Config {
                state: spec.state_id("A").unwrap(),
                vars: vec![7],
            },
        )
        .unwrap();
        low.apply_named("TICK").unwrap();
        assert_eq!(spec.state_name(low.state()), "A");
        assert_eq!(low.var("seq").unwrap(), 8);
    }

    #[test]
    fn expr_variables_collected() {
        let e = Expr::And(
            Box::new(Expr::Eq(Box::new(Expr::var("a")), Box::new(Expr::Const(1)))),
            Box::new(Expr::var("b")),
        );
        assert_eq!(e.variables(), vec!["a", "b"]);
    }

    #[test]
    fn paper_sender_walkthrough() {
        // The exact sequence of §3.4: SEND, then OK advances seq; a
        // second SEND, TIMEOUT ends in the Timeout state.
        let spec = paper_sender_spec(255);
        let mut m = Machine::new(&spec);
        assert_eq!(spec.state_name(m.state()), "Ready");
        m.apply_named("SEND").unwrap();
        assert_eq!(spec.state_name(m.state()), "Wait");
        m.apply_named("OK").unwrap();
        assert_eq!(spec.state_name(m.state()), "Ready");
        assert_eq!(m.var("seq").unwrap(), 1, "OK advances the sequence number");
        m.apply_named("SEND").unwrap();
        m.apply_named("TIMEOUT").unwrap();
        assert_eq!(spec.state_name(m.state()), "Timeout");
        assert_eq!(m.var("seq").unwrap(), 1, "TIMEOUT preserves seq");
        assert!(!m.is_terminal());
        m.apply_named("RETRY").unwrap();
        m.apply_named("FINISH").unwrap();
        assert!(m.is_terminal());
    }

    #[test]
    fn soundness_invalid_events_rejected() {
        // "timeout cannot occur if an acknowledgement has been received
        // and acted on" — §3.4 item 3.
        let spec = paper_sender_spec(255);
        let mut m = Machine::new(&spec);
        assert_eq!(
            m.apply_named("TIMEOUT"),
            Err(DslError::NoTransition {
                state: "Ready".into(),
                event: "TIMEOUT".into()
            })
        );
        // The machine is unchanged after a rejected event.
        assert_eq!(spec.state_name(m.state()), "Ready");
        m.apply_named("SEND").unwrap();
        assert!(
            m.apply_named("SEND").is_err(),
            "no pipelining in stop-and-wait"
        );
    }

    #[test]
    fn seq_wraps_at_domain_bound() {
        let spec = paper_sender_spec(3); // seq ∈ 0..=3
        let mut m = Machine::new(&spec);
        for expect in [1u64, 2, 3, 0, 1] {
            m.apply_named("SEND").unwrap();
            m.apply_named("OK").unwrap();
            assert_eq!(m.var("seq").unwrap(), expect);
        }
    }

    #[test]
    fn guards_select_transitions() {
        let spec = Spec::builder("guarded")
            .state("A")
            .state("Small")
            .state("Big")
            .event("GO")
            .var("x", 10, 0)
            .transition_full(
                "A",
                "GO",
                "Small",
                Some(Expr::Lt(Box::new(Expr::var("x")), Box::new(Expr::Const(5)))),
                vec![],
            )
            .transition_full(
                "A",
                "GO",
                "Big",
                Some(Expr::Not(Box::new(Expr::Lt(
                    Box::new(Expr::var("x")),
                    Box::new(Expr::Const(5)),
                )))),
                vec![],
            )
            .build()
            .unwrap();
        let mut m = Machine::new(&spec);
        m.apply_named("GO").unwrap();
        assert_eq!(spec.state_name(m.state()), "Small");

        let mut m2 = Machine::at(
            &spec,
            Config {
                state: spec.state_id("A").unwrap(),
                vars: vec![7],
            },
        )
        .unwrap();
        m2.apply_named("GO").unwrap();
        assert_eq!(spec.state_name(m2.state()), "Big");
    }

    /// Two `A --GO-->` transitions whose guards (`x <= 5`, `x <= 7`) are
    /// distinct but overlap for `x <= 5` — buildable, ambiguous only at
    /// runtime.
    fn sometimes_overlapping_spec() -> Spec {
        Spec::builder("nd")
            .state("A")
            .state("B")
            .event("GO")
            .var("x", 9, 0)
            .transition_full(
                "A",
                "GO",
                "B",
                Some(Expr::Le(Box::new(Expr::var("x")), Box::new(Expr::Const(5)))),
                vec![],
            )
            .transition_full(
                "A",
                "GO",
                "A",
                Some(Expr::Le(Box::new(Expr::var("x")), Box::new(Expr::Const(7)))),
                vec![],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn nondeterminism_detected_not_resolved() {
        let spec = sometimes_overlapping_spec();
        assert_eq!(spec.overlap_candidates(), vec![(0, 1)]);
        // x = 0: both guards hold — surfaced, not tie-broken by order.
        let mut m = Machine::new(&spec);
        assert!(matches!(
            m.apply_named("GO"),
            Err(DslError::Nondeterministic { .. })
        ));
        // x = 7: only the second guard holds — the overlap is genuinely
        // valuation-dependent, which is why build accepts the spec.
        let mut m7 = Machine::at(
            &spec,
            Config {
                state: spec.state_id("A").unwrap(),
                vars: vec![7],
            },
        )
        .unwrap();
        assert_eq!(m7.apply_named("GO").unwrap(), spec.state_id("A").unwrap());
    }

    #[test]
    fn certainly_overlapping_transitions_rejected_at_build() {
        // Unguarded duplicates can never be distinguished: reject early.
        assert!(matches!(
            Spec::builder("nd")
                .state("A")
                .state("B")
                .event("GO")
                .transition("A", "GO", "B")
                .transition("A", "GO", "A")
                .build(),
            Err(DslError::BadSpec { .. })
        ));
        // Same for one unguarded + one guarded…
        let g = Expr::Le(Box::new(Expr::var("x")), Box::new(Expr::Const(5)));
        assert!(matches!(
            Spec::builder("nd")
                .state("A")
                .event("GO")
                .var("x", 9, 0)
                .transition("A", "GO", "A")
                .transition_full("A", "GO", "A", Some(g.clone()), vec![])
                .build(),
            Err(DslError::BadSpec { .. })
        ));
        // …and for syntactically identical guards.
        assert!(matches!(
            Spec::builder("nd")
                .state("A")
                .state("B")
                .event("GO")
                .var("x", 9, 0)
                .transition_full("A", "GO", "A", Some(g.clone()), vec![])
                .transition_full("A", "GO", "B", Some(g), vec![])
                .build(),
            Err(DslError::BadSpec { .. })
        ));
    }

    #[test]
    fn builder_validates_references() {
        assert!(matches!(
            Spec::builder("x").build(),
            Err(DslError::BadSpec { .. })
        ));
        assert!(matches!(
            Spec::builder("x")
                .state("A")
                .event("E")
                .transition("A", "E", "Ghost")
                .build(),
            Err(DslError::UnknownName { .. })
        ));
        assert!(matches!(
            Spec::builder("x")
                .state("A")
                .event("E")
                .transition_full("A", "E", "A", Some(Expr::var("ghost")), vec![])
                .build(),
            Err(DslError::UnknownName { .. })
        ));
        assert!(matches!(
            Spec::builder("x").state("A").var("v", 3, 9).build(),
            Err(DslError::DomainViolation { .. })
        ));
        assert!(matches!(
            Spec::builder("x").state("A").state("A").build(),
            Err(DslError::BadSpec { .. })
        ));
    }

    #[test]
    fn machine_at_validates_configuration() {
        let spec = paper_sender_spec(3);
        assert!(Machine::at(
            &spec,
            Config {
                state: StateId(0),
                vars: vec![4]
            }
        )
        .is_err());
        assert!(Machine::at(
            &spec,
            Config {
                state: StateId(99),
                vars: vec![0]
            }
        )
        .is_err());
        assert!(Machine::at(
            &spec,
            Config {
                state: StateId(1),
                vars: vec![2]
            }
        )
        .is_ok());
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = paper_sender_spec(255);
        // serde is wired for tooling: specs can be stored/exchanged.
        // Round-trip through the serde data model using serde's own
        // in-memory representative (JSON not available offline): use
        // bincode-like manual check via Debug equality after clone.
        let clone = spec.clone();
        assert_eq!(spec, clone);
        // Serialize trait object-safety compile check:
        fn assert_serializable<T: Serialize + for<'de> Deserialize<'de>>() {}
        assert_serializable::<Spec>();
    }

    #[test]
    fn dot_output_names_states_and_events() {
        let spec = paper_sender_spec(255);
        let dot = spec.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("Ready"));
        assert!(dot.contains("SEND"));
        assert!(dot.contains("doublecircle"), "terminal state styled");
    }

    #[test]
    fn dot_output_escapes_hostile_names() {
        // Regression: quotes and backslashes in names used to land raw
        // inside double-quoted labels, producing invalid Graphviz.
        let spec = Spec::builder("we \"quote\" \\ stuff")
            .state("A\"B")
            .event("E\\V")
            .transition("A\"B", "E\\V", "A\"B")
            .build()
            .unwrap();
        let dot = spec.to_dot();
        assert!(dot.contains("digraph \"we \\\"quote\\\" \\\\ stuff\" {"));
        assert!(dot.contains("label=\"A\\\"B\""));
        assert!(dot.contains("label=\"E\\\\V\""));
        // Every quote inside a label is now escaped: strip the escapes
        // and no bare quote may remain between the label delimiters.
        for line in dot.lines().filter(|l| l.contains("label=")) {
            let body = line.split("label=\"").nth(1).unwrap();
            let body = &body[..body.rfind('"').unwrap()];
            assert!(
                !body.replace("\\\\", "").replace("\\\"", "").contains('"'),
                "unescaped quote in {line:?}"
            );
        }
    }

    #[test]
    fn receiver_spec_advances_on_recv() {
        let spec = paper_receiver_spec(7);
        let mut m = Machine::new(&spec);
        m.apply_named("RECV").unwrap();
        m.apply_named("RECV").unwrap();
        assert_eq!(m.var("seq").unwrap(), 2);
        m.apply_named("REJECT").unwrap();
        assert_eq!(m.var("seq").unwrap(), 2, "rejects do not advance");
    }
}
