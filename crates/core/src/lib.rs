//! # netdsl-core — the protocol DSL
//!
//! This crate is the reproduction of the paper's central proposal (§3): a
//! domain-specific language, embedded in a strongly-typed host language,
//! that integrates in one framework
//!
//! 1. **packet and interface structure** — [`packet::PacketSpec`], a
//!    declarative, bit-granular message description with semantic
//!    constraints (constants, computed lengths, checksums) that ABNF/ASN.1
//!    cannot express;
//! 2. **states and transitions** — two embeddings of protocol state
//!    machines: the *static* [`typestate`] embedding, where an invalid
//!    transition is a **compile error** (the paper's `SendTrans : SendSt →
//!    SendSt → ⋆` GADT), and the *reified* [`fsm`] embedding, a data-level
//!    spec that the model checker in `netdsl-verify` can exhaustively
//!    analyse;
//! 3. **execution of valid transitions** — [`exec`], the `execTrans`
//!    interpreter, which steps a reified machine and refuses (soundly) any
//!    event with no enabled transition.
//!
//! The dependent-type idioms of the paper map onto Rust as follows (see
//! DESIGN.md §2 for the full table):
//!
//! * `ChkPacket p` (validation witness) → [`witness::Checked`], a sealed
//!   wrapper constructible *only* by running the validator, so validated
//!   data never needs re-checking;
//! * `List A n` (length-indexed vectors) → [`tyvec::Vect`], backed by
//!   const generics, with compile-time-checked static indices;
//! * `SendTrans s s'` → [`typestate::Transition`] implementations whose
//!   `From`/`To` associated types are zero-sized state types.
//!
//! # Quickstart
//!
//! ```
//! use netdsl_core::packet::{PacketSpec, Coverage, Len, Value};
//! use netdsl_wire::checksum::ChecksumKind;
//!
//! # fn main() -> Result<(), netdsl_core::DslError> {
//! // The paper's ARQ packet: sequence number, checksum, payload (§3.4).
//! let spec = PacketSpec::builder("arq")
//!     .uint("seq", 8)
//!     .checksum("chk", ChecksumKind::Arq,
//!               Coverage::Fields(vec!["seq".into(), "data".into()]))
//!     .bytes("data", Len::Rest)
//!     .build()?;
//!
//! let mut pkt = spec.value();
//! pkt.set("seq", Value::Uint(7));
//! pkt.set("data", Value::Bytes(b"hello".to_vec()));
//! let wire = spec.encode(&pkt)?;            // checksum filled in automatically
//! let decoded = spec.decode(&wire)?;        // witness: checksum verified
//! assert_eq!(decoded.uint("seq")?, 7);      // field access via Deref
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod exec;
pub mod fsm;
pub mod fsm_compiled;
pub mod packet;
pub mod typestate;
pub mod tyvec;
pub mod witness;

pub use error::DslError;
