//! The transition interpreter — the paper's `execTrans`.
//!
//! ```text
//! execTrans : SendTrans s s′ → Machine s → IO (Machine s′)
//! ```
//!
//! [`Driver`] wraps a reified [`crate::fsm::Machine`] and
//! provides the run-time face of item (iii) of §3.2: it executes valid
//! transitions, **refuses** invalid ones (soundness — the machine is left
//! untouched and the caller gets [`DslError::NoTransition`]), records a
//! complete transition trace, and checks the consistent-termination
//! condition of §3.4 ("sending a packet (or sequence of packets) ends in
//! a consistent state, either with success or with timeout").

use crate::error::DslError;
use crate::fsm::{Config, EventId, Machine, Spec, StateId};

/// One executed transition, as recorded in a [`Driver`]'s trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionRecord {
    /// Configuration before the event.
    pub before: Config,
    /// The event applied.
    pub event: EventId,
    /// Configuration after the event.
    pub after: Config,
}

/// Interpreter for a reified machine with trace recording.
#[derive(Debug, Clone)]
pub struct Driver<'s> {
    machine: Machine<'s>,
    trace: Vec<TransitionRecord>,
    rejected: u64,
}

impl<'s> Driver<'s> {
    /// Starts a driver at the spec's initial configuration.
    pub fn new(spec: &'s Spec) -> Self {
        Driver {
            machine: Machine::new(spec),
            trace: Vec::new(),
            rejected: 0,
        }
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine<'s> {
        &self.machine
    }

    /// The transitions executed so far, in order.
    pub fn trace(&self) -> &[TransitionRecord] {
        &self.trace
    }

    /// How many events were rejected as invalid (soundness refusals).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Executes one event by name.
    ///
    /// # Errors
    ///
    /// * [`DslError::UnknownName`] — the event is not declared;
    /// * [`DslError::NoTransition`] — the event is declared but invalid in
    ///   the current configuration; the machine is unchanged and the
    ///   refusal is counted;
    /// * [`DslError::Nondeterministic`] — spec bug surfaced.
    pub fn dispatch(&mut self, event: &str) -> Result<StateId, DslError> {
        let id = self
            .machine
            .spec()
            .event_id(event)
            .ok_or(DslError::UnknownName {
                name: event.to_string(),
            })?;
        let before = self.machine.config().clone();
        match self.machine.apply(id) {
            Ok(to) => {
                self.trace.push(TransitionRecord {
                    before,
                    event: id,
                    after: self.machine.config().clone(),
                });
                Ok(to)
            }
            Err(e) => {
                if matches!(e, DslError::NoTransition { .. }) {
                    self.rejected += 1;
                }
                Err(e)
            }
        }
    }

    /// Executes a whole event sequence, stopping at the first failure.
    ///
    /// # Errors
    ///
    /// The first dispatch error, wrapped with its position.
    pub fn run(&mut self, events: &[&str]) -> Result<(), (usize, DslError)> {
        for (i, e) in events.iter().enumerate() {
            self.dispatch(e).map_err(|err| (i, err))?;
        }
        Ok(())
    }

    /// `true` if the machine currently sits in a terminal state — the
    /// "consistent end state" check.
    pub fn at_consistent_end(&self) -> bool {
        self.machine.is_terminal()
    }

    /// Renders the trace as `state -EVENT-> state` lines for diagnostics.
    pub fn format_trace(&self) -> String {
        let spec = self.machine.spec();
        self.trace
            .iter()
            .map(|r| {
                format!(
                    "{} -{}-> {}\n",
                    spec.state_name(r.before.state),
                    spec.event_name(r.event),
                    spec.state_name(r.after.state)
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::paper_sender_spec;

    #[test]
    fn dispatch_executes_and_traces() {
        let spec = paper_sender_spec(255);
        let mut d = Driver::new(&spec);
        d.dispatch("SEND").unwrap();
        d.dispatch("OK").unwrap();
        d.dispatch("FINISH").unwrap();
        assert_eq!(d.trace().len(), 3);
        assert!(d.at_consistent_end());
        let t = d.format_trace();
        assert!(t.contains("Ready -SEND-> Wait"));
        assert!(t.contains("Wait -OK-> Ready"));
        assert!(t.contains("Ready -FINISH-> Sent"));
    }

    #[test]
    fn invalid_event_counted_and_machine_untouched() {
        let spec = paper_sender_spec(255);
        let mut d = Driver::new(&spec);
        assert!(d.dispatch("OK").is_err(), "OK before SEND is invalid");
        assert_eq!(d.rejected(), 1);
        assert!(d.trace().is_empty());
        assert_eq!(spec.state_name(d.machine().state()), "Ready");
    }

    #[test]
    fn unknown_event_is_not_a_soundness_refusal() {
        let spec = paper_sender_spec(255);
        let mut d = Driver::new(&spec);
        assert!(matches!(
            d.dispatch("NOPE"),
            Err(DslError::UnknownName { .. })
        ));
        assert_eq!(d.rejected(), 0);
    }

    #[test]
    fn run_reports_failure_position() {
        let spec = paper_sender_spec(255);
        let mut d = Driver::new(&spec);
        let err = d.run(&["SEND", "OK", "OK"]).unwrap_err();
        assert_eq!(err.0, 2);
        assert!(matches!(err.1, DslError::NoTransition { .. }));
        assert_eq!(d.trace().len(), 2, "prefix executed");
    }

    #[test]
    fn trace_records_variable_evolution() {
        let spec = paper_sender_spec(255);
        let mut d = Driver::new(&spec);
        d.run(&["SEND", "OK", "SEND", "OK"]).unwrap();
        let seqs: Vec<u64> = d.trace().iter().map(|r| r.after.vars[0]).collect();
        assert_eq!(seqs, vec![0, 1, 1, 2]);
    }
}
