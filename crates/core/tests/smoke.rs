//! Crate-level smoke test: a packet spec encodes/decodes and an FSM runs.

use netdsl_core::fsm::{paper_sender_spec, Machine};
use netdsl_core::packet::{Coverage, Len, PacketSpec, Value};
use netdsl_wire::checksum::ChecksumKind;

#[test]
fn packet_spec_roundtrip_with_auto_checksum() {
    let spec = PacketSpec::builder("smoke")
        .uint("seq", 8)
        .checksum("check", ChecksumKind::Arq, Coverage::Whole)
        .bytes("data", Len::Rest)
        .build()
        .expect("valid spec");
    let mut v = spec.value();
    v.set("seq", Value::Uint(5));
    v.set("data", Value::Bytes(b"ping".to_vec()));
    let wire = spec.encode(&v).expect("encodes");

    let back = spec.decode(&wire).expect("decodes and validates");
    assert_eq!(back.uint("seq").unwrap(), 5);
    assert_eq!(back.bytes("data").unwrap(), b"ping");

    // A flipped bit must be rejected by the definition itself.
    let mut bad = wire.clone();
    bad[0] ^= 0x40;
    assert!(spec.decode(&bad).is_err());
}

#[test]
fn fsm_machine_advances() {
    let spec = paper_sender_spec(15);
    assert_eq!(spec.name(), "paper-arq-sender");
    let mut m = Machine::new(&spec);
    m.apply_named("SEND").expect("initial send enabled");
}
