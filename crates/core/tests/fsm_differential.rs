//! Differential proptest suite: the compiled transition-table engine
//! must agree with the tree-walking [`Machine`] on **randomly generated
//! specs** — step-for-step on accepted events, error-for-error on
//! refused ones (`NoTransition` and `Nondeterministic` alike), and
//! configuration-for-configuration after every step, including the
//! untouched-on-reject guarantee.
//!
//! The FSM twin of `netdsl-codec`'s codec differential suite: specs are
//! grown from a seeded ChaCha stream so every failure reproduces from
//! its printed seed, and a handful of pinned seeds keep covering the
//! same tricky shapes regardless of ambient proptest seeding.

use netdsl_core::fsm::{EventId, Expr, Machine, Spec};
use netdsl_core::fsm_compiled::{lower, Stepper};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Variable domains worth exercising: tiny (lots of wrap), byte-sized
/// (the paper's sequence space), and full-width (the modulus that
/// doesn't fit in a `u64`).
const DOMAINS: [u64; 5] = [1, 3, 7, 255, u64::MAX];

/// A random expression over `vars` (by name), depth-limited so guards
/// stay evaluable at volume.
fn random_expr(rng: &mut ChaCha12Rng, vars: &[(String, u64)], depth: u32) -> Expr {
    let leaf = depth == 0 || rng.random_bool(0.35);
    if leaf {
        if !vars.is_empty() && rng.random_bool(0.6) {
            let (name, _) = &vars[rng.random_range(0usize..vars.len())];
            return Expr::var(name);
        }
        // Mostly small constants (near the interesting wrap points),
        // occasionally huge ones.
        return Expr::Const(if rng.random_bool(0.8) {
            rng.random_range(0u64..10)
        } else {
            rng.random_range(0u64..=u64::MAX)
        });
    }
    let a = Box::new(random_expr(rng, vars, depth - 1));
    let b = Box::new(random_expr(rng, vars, depth - 1));
    match rng.random_range(0u32..9) {
        0 => Expr::Add(a, b),
        1 => Expr::Sub(a, b),
        2 => Expr::Eq(a, b),
        3 => Expr::Ne(a, b),
        4 => Expr::Lt(a, b),
        5 => Expr::Le(a, b),
        6 => Expr::And(a, b),
        7 => Expr::Or(a, b),
        _ => Expr::Not(a),
    }
}

/// Would adding `guard` to `existing` (guards already declared on the
/// same `(from, event)` cell) trip the builder's certain-overlap
/// rejection? Mirrors the rule in `SpecBuilder::build`: unguarded or
/// syntactically identical guards certainly overlap.
fn certainly_overlaps(existing: &[Option<Expr>], guard: &Option<Expr>) -> bool {
    existing.iter().any(|g| match (g, guard) {
        (None, _) | (_, None) => true,
        (Some(x), Some(y)) => x == y,
    })
}

/// Grows a random well-formed spec: 1–4 states (later ones sometimes
/// terminal), 1–3 events, 0–2 bounded variables, 0–8 transitions with
/// optional guards and effects. Certain overlaps are skipped before
/// pushing, so `build()` always succeeds; *valuation-dependent*
/// overlaps stay in, which is exactly what exercises the
/// `Nondeterministic` path in both engines.
fn random_spec(rng: &mut ChaCha12Rng) -> Spec {
    let n_states = rng.random_range(1usize..=4);
    let n_events = rng.random_range(1usize..=3);
    let n_vars = rng.random_range(0usize..=2);

    let mut b = Spec::builder("diff");
    for s in 0..n_states {
        let name = format!("S{s}");
        if s > 0 && rng.random_bool(0.25) {
            b = b.terminal(&name);
        } else {
            b = b.state(&name);
        }
    }
    for e in 0..n_events {
        b = b.event(&format!("E{e}"));
    }
    let mut vars: Vec<(String, u64)> = Vec::new();
    for v in 0..n_vars {
        let name = format!("v{v}");
        let max = DOMAINS[rng.random_range(0usize..DOMAINS.len())];
        let init = rng.random_range(0u64..=max);
        b = b.var(&name, max, init);
        vars.push((name, max));
    }

    let mut guards_by_cell: std::collections::BTreeMap<(usize, usize), Vec<Option<Expr>>> =
        std::collections::BTreeMap::new();
    for _ in 0..rng.random_range(0usize..=8) {
        let from = rng.random_range(0usize..n_states);
        let event = rng.random_range(0usize..n_events);
        let to = rng.random_range(0usize..n_states);
        let guard = if rng.random_bool(0.5) {
            let depth = rng.random_range(1u32..=3);
            Some(random_expr(rng, &vars, depth))
        } else {
            None
        };
        let cell = guards_by_cell.entry((from, event)).or_default();
        if certainly_overlaps(cell, &guard) {
            continue; // the builder would reject; generate a legal spec
        }
        cell.push(guard.clone());
        let effects: Vec<(String, Expr)> = (0..rng.random_range(0usize..=2))
            .filter(|_| !vars.is_empty())
            .map(|_| {
                let (name, _) = &vars[rng.random_range(0usize..vars.len())];
                (name.clone(), random_expr(rng, &vars, 2))
            })
            .collect();
        b = b.transition_full(
            &format!("S{from}"),
            &format!("E{event}"),
            &format!("S{to}"),
            guard,
            effects,
        );
    }
    b.build().expect("generator emits well-formed specs")
}

/// One differential episode: spec → lower → drive both engines through
/// the same random event schedule, comparing verdicts and configurations
/// after every single step (accepted or refused).
fn differential_case(seed: u64) -> Result<(), TestCaseError> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let spec = random_spec(&mut rng);
    let fsm = lower(&spec).expect("every built spec lowers");

    let mut walker = Machine::new(&spec);
    let mut stepper = Stepper::new(&fsm);
    prop_assert_eq!(walker.config(), &stepper.config(), "initial configs");

    let n_events = spec.events().len();
    for step in 0..rng.random_range(1usize..=32) {
        let event = EventId(rng.random_range(0usize..n_events));
        let w = walker.apply(event);
        let s = stepper.apply(event);
        prop_assert_eq!(
            &w,
            &s,
            "verdicts diverge (seed {}, step {}, event {:?})\n{}",
            seed,
            step,
            event,
            fsm.disassemble()
        );
        // Configurations must agree after *every* step: on success both
        // engines moved identically; on refusal (NoTransition or
        // Nondeterministic) both must be untouched.
        prop_assert_eq!(
            walker.config(),
            &stepper.config(),
            "configs diverge (seed {}, step {}, verdict {:?})",
            seed,
            step,
            w
        );
        prop_assert_eq!(
            walker.is_terminal(),
            stepper.is_terminal(),
            "terminal flags diverge (seed {seed}, step {step})"
        );
    }
    Ok(())
}

proptest! {
    /// Random specs × random event schedules: the compiled stepper and
    /// the tree-walking interpreter are observationally identical.
    #[test]
    fn compiled_stepper_is_equivalent_to_walker(seed in any::<u64>()) {
        differential_case(seed)?;
    }
}

/// Pinned seeds so the suite keeps covering the same tricky shapes even
/// if the ambient proptest seeding changes.
#[test]
fn pinned_seeds_stay_equivalent() {
    for seed in [0, 1, 7, 42, 1337, 0xDEAD_BEEF, u64::MAX] {
        differential_case(seed).unwrap();
    }
}
