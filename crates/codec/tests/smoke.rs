//! Crate-level smoke test: lower a spec, decode zero-copy, encode into a
//! reused buffer.

use netdsl_codec::{lower, FieldView};
use netdsl_core::packet::{Coverage, Len, PacketSpec, Value};
use netdsl_wire::checksum::ChecksumKind;

#[test]
fn lower_decode_encode_smoke() {
    let spec = PacketSpec::builder("smoke")
        .uint("seq", 8)
        .checksum("check", ChecksumKind::Crc16Ccitt, Coverage::Whole)
        .bytes("data", Len::Rest)
        .build()
        .expect("valid spec");
    let codec = lower(&spec).expect("lowers");

    let mut v = spec.value();
    v.set("seq", Value::Uint(5));
    v.set("data", Value::Bytes(b"ping".to_vec()));
    let wire = spec.encode(&v).expect("encodes");

    // Zero-copy decode into a reusable view.
    let mut view = FieldView::new();
    codec.decode_into(&wire, &mut view).expect("validates");
    assert_eq!(view.uint(codec.field_index("seq").unwrap()), 5);
    assert_eq!(
        view.bytes(&wire, codec.field_index("data").unwrap()),
        b"ping"
    );

    // Compiled encode is byte-identical.
    assert_eq!(codec.encode_packet_value(&v).unwrap(), wire);

    // A flipped bit is rejected by the compiled program too.
    let mut bad = wire.clone();
    bad[0] ^= 0x40;
    assert!(codec.decode_into(&bad, &mut view).is_err());
}
