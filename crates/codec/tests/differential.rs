//! Differential proptest suite: the compiled codec must agree with the
//! interpretive `PacketSpec` walker on **randomly generated specs** —
//! byte-for-byte on encode, verdict-for-verdict on decode, for accept
//! *and* reject cases (bit flips, truncations, trailing garbage,
//! ill-typed and mismatched value sets).
//!
//! Specs are grown from a seeded ChaCha stream so every failure
//! reproduces from its printed seed.

use netdsl_codec::lower;
use netdsl_core::packet::{Coverage, Len, PacketSpec, PacketValue, Value};
use netdsl_wire::checksum::ChecksumKind;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

const CHECKSUM_KINDS: [ChecksumKind; 7] = [
    ChecksumKind::Arq,
    ChecksumKind::Internet,
    ChecksumKind::Fletcher16,
    ChecksumKind::Fletcher32,
    ChecksumKind::Adler32,
    ChecksumKind::Crc16Ccitt,
    ChecksumKind::Crc32Ieee,
];

/// What the generator remembers about an emitted field, to build value
/// sets and later references.
#[derive(Debug, Clone)]
enum Gen {
    /// A plain integer the caller must supply (bits).
    Uint(usize),
    /// An enumerated field (allowed values).
    Enum(Vec<u64>),
    /// Computed on encode (const/length/checksum) — never supplied.
    Computed,
    /// A byte run: `(fixed_len, prefix)` where `prefix` names an earlier
    /// caller-supplied integer whose value must equal `len - bias`.
    Bytes {
        fixed: Option<usize>,
        prefix: Option<(usize, i64)>, // (field position of prefix, bias)
        rest: bool,
    },
}

/// Grows a random well-formed spec. Returns the spec plus the per-field
/// generation notes, in wire order.
fn random_spec(rng: &mut ChaCha12Rng) -> (PacketSpec, Vec<Gen>) {
    let nfields = rng.random_range(1usize..=7);
    let mut b = PacketSpec::builder("diff");
    let mut gens: Vec<Gen> = Vec::new();
    let mut bit_mod8 = 0usize;
    // Earlier caller-supplied plain uint fields wide enough to carry a
    // small length (candidates for Len::Prefixed).
    let mut prefix_candidates: Vec<usize> = Vec::new();

    for i in 0..nfields {
        let name = format!("f{i}");
        let aligned = bit_mod8 == 0;
        let last = i == nfields - 1;
        // Weighted kind choice, constrained by alignment/position.
        let choice = rng.random_range(0u32..100);
        if aligned && last && choice < 20 {
            b = b.bytes(&name, Len::Rest);
            gens.push(Gen::Bytes {
                fixed: None,
                prefix: None,
                rest: true,
            });
            continue;
        }
        if aligned && (20..32).contains(&choice) {
            let kind = CHECKSUM_KINDS[rng.random_range(0usize..CHECKSUM_KINDS.len())];
            let coverage = random_coverage(rng, &gens, i);
            b = b.checksum(&name, kind, coverage);
            gens.push(Gen::Computed);
            continue;
        }
        if aligned && (32..42).contains(&choice) {
            let n = rng.random_range(0usize..6);
            b = b.bytes(&name, Len::Fixed(n));
            gens.push(Gen::Bytes {
                fixed: Some(n),
                prefix: None,
                rest: false,
            });
            continue;
        }
        if aligned && (42..52).contains(&choice) && !prefix_candidates.is_empty() {
            let prefix = prefix_candidates[rng.random_range(0usize..prefix_candidates.len())];
            let bias = rng.random_range(-2i64..=2);
            b = b.bytes(
                &name,
                Len::Prefixed {
                    field: format!("f{prefix}"),
                    unit: 1,
                    bias,
                },
            );
            gens.push(Gen::Bytes {
                fixed: None,
                prefix: Some((prefix, bias)),
                rest: false,
            });
            continue;
        }
        // Integer kinds (always available).
        match rng.random_range(0u32..4) {
            0 => {
                let bits = rng.random_range(1usize..=64);
                b = b.constant(&name, bits, random_value(rng, bits));
                gens.push(Gen::Computed);
                bit_mod8 = (bit_mod8 + bits) % 8;
            }
            1 => {
                let bits = rng.random_range(1usize..=16);
                let n = rng.random_range(1usize..=4);
                let mut allowed: Vec<u64> = (0..n).map(|_| random_value(rng, bits)).collect();
                allowed.sort_unstable();
                allowed.dedup();
                b = b.enumerated(&name, bits, &allowed);
                gens.push(Gen::Enum(allowed));
                bit_mod8 = (bit_mod8 + bits) % 8;
            }
            2 => {
                let bits = rng.random_range(8usize..=24);
                let coverage = random_coverage(rng, &gens, i);
                let unit = rng.random_range(1u64..=4);
                let bias = rng.random_range(-2i64..=2);
                b = b.length_scaled(&name, bits, coverage, unit, bias);
                gens.push(Gen::Computed);
                bit_mod8 = (bit_mod8 + bits) % 8;
            }
            _ => {
                let bits = rng.random_range(1usize..=64);
                b = b.uint(&name, bits);
                if (6..=32).contains(&bits) {
                    prefix_candidates.push(i);
                }
                gens.push(Gen::Uint(bits));
                bit_mod8 = (bit_mod8 + bits) % 8;
            }
        }
    }
    if bit_mod8 != 0 {
        let bits = 8 - bit_mod8;
        b = b.uint("pad", bits);
        gens.push(Gen::Uint(bits));
    }
    (b.build().expect("generator emits well-formed specs"), gens)
}

fn random_value(rng: &mut ChaCha12Rng, bits: usize) -> u64 {
    let v: u64 = rng.random_range(0u64..=u64::MAX);
    if bits == 64 {
        v
    } else {
        v & ((1u64 << bits) - 1)
    }
}

/// Whole-frame coverage, or a non-empty subset of the fields emitted so
/// far plus (sometimes) the owner itself.
fn random_coverage(rng: &mut ChaCha12Rng, gens: &[Gen], owner: usize) -> Coverage {
    if gens.is_empty() || rng.random_bool(0.5) {
        return Coverage::Whole;
    }
    let mut names: Vec<String> = (0..gens.len())
        .filter(|_| rng.random_bool(0.6))
        .map(|i| format!("f{i}"))
        .collect();
    if rng.random_bool(0.3) {
        names.push(format!("f{owner}"));
    }
    if names.is_empty() {
        names.push(format!("f{}", rng.random_range(0usize..gens.len())));
    }
    Coverage::Fields(names)
}

/// Builds a value set for `spec`. With `sabotage`, one field is made
/// deliberately inconsistent (enum non-member, wrong fixed length,
/// mismatched prefix) so encode-reject verdicts get exercised too.
fn random_values(rng: &mut ChaCha12Rng, gens: &[Gen], sabotage: bool) -> PacketValue {
    let mut pv = PacketValue::new();
    // Pass 1: pick byte-run lengths so prefix fields can be made
    // consistent.
    let mut forced_uint: Vec<Option<u64>> = vec![None; gens.len() + 1];
    let mut lens: Vec<usize> = vec![0; gens.len() + 1];
    for (i, g) in gens.iter().enumerate() {
        if let Gen::Bytes {
            fixed,
            prefix,
            rest,
        } = g
        {
            let len = match (fixed, rest) {
                (Some(n), _) => *n,
                (None, true) => rng.random_range(0usize..10),
                (None, false) => rng.random_range(0usize..10),
            };
            lens[i] = len;
            if let Some((p, bias)) = prefix {
                // byte_len = v * 1 + bias  ⇒  v = len - bias (kept ≥ 0).
                let v = (len as i64 - bias).max(0);
                lens[i] = (v + bias).max(0) as usize;
                forced_uint[*p] = Some(v as u64);
            }
        }
    }
    let field_names: Vec<String> = (0..gens.len()).map(|i| format!("f{i}")).collect();
    for (i, g) in gens.iter().enumerate() {
        let fname = &field_names[i];
        match g {
            Gen::Uint(bits) => {
                let v = forced_uint[i].unwrap_or_else(|| random_value(rng, *bits));
                // Forced prefixes might not fit narrow fields; clamp into
                // range (encode would overflow otherwise, which is a
                // legitimate verdict but uninteresting at volume).
                let v = if *bits < 64 {
                    v & ((1u64 << bits) - 1)
                } else {
                    v
                };
                pv.set(fname, Value::Uint(v));
            }
            Gen::Enum(allowed) => {
                let v = allowed[rng.random_range(0usize..allowed.len())];
                pv.set(fname, Value::Uint(v));
            }
            Gen::Computed => {
                if rng.random_bool(0.2) {
                    // Supplied values for computed fields are ignored by
                    // both encoders; prove it occasionally.
                    pv.set(fname, Value::Uint(random_value(rng, 8)));
                }
            }
            Gen::Bytes { .. } => {
                let data: Vec<u8> = (0..lens[i])
                    .map(|_| rng.random_range(0u64..256) as u8)
                    .collect();
                pv.set(fname, Value::Bytes(data));
            }
        }
    }
    // The generator's pad field (if any) sits past `gens`.
    if sabotage {
        let victim = rng.random_range(0usize..gens.len());
        let fname = &field_names[victim];
        match &gens[victim] {
            Gen::Uint(_) | Gen::Computed => {
                pv.set(fname, Value::Bytes(vec![1, 2, 3]));
            }
            Gen::Enum(allowed) => {
                let bad = allowed.iter().max().unwrap() + 1;
                pv.set(fname, Value::Uint(bad));
            }
            Gen::Bytes { .. } => {
                pv.set(fname, Value::Bytes(vec![0xEE; lens[victim] + 3]));
            }
        }
    }
    pv
}

/// One differential episode: spec → values → encode both ways → decode
/// both ways → corrupted decode both ways.
fn differential_case(seed: u64) -> Result<(), TestCaseError> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let (spec, gens) = random_spec(&mut rng);
    let codec = lower(&spec).expect("every built spec lowers");
    prop_assert_eq!(codec.field_count(), spec.fields().len());

    for round in 0..4 {
        let sabotage = round == 3;
        let mut pv = random_values(&mut rng, &gens, sabotage);
        if spec.fields().len() > gens.len() {
            if let netdsl_core::packet::FieldKind::Uint { bits } = &spec.fields()[gens.len()].kind {
                pv.set("pad", Value::Uint(random_value(&mut rng, *bits)));
            }
        }

        let interpretive = spec.encode(&pv);
        let compiled = codec.encode_packet_value(&pv);
        prop_assert_eq!(
            interpretive.is_ok(),
            compiled.is_ok(),
            "encode verdicts diverge (seed {}, round {}): interp {:?} vs compiled {:?}",
            seed,
            round,
            interpretive,
            compiled
        );
        let Ok(frame) = interpretive else { continue };
        let compiled_frame = compiled.unwrap();
        prop_assert_eq!(
            &frame,
            &compiled_frame,
            "encoded bytes diverge (seed {seed}, round {round})"
        );

        // Decode verdicts must agree. (A self-encoded frame is *almost*
        // always accepted; the exception — faithfully mirrored by the
        // compiled path — is a spec where one checksum covers another
        // and sequential patching invalidates the first.)
        let i_dec = spec.decode(&frame);
        let c_dec = codec.decode(&frame);
        prop_assert_eq!(
            i_dec.is_ok(),
            c_dec.is_ok(),
            "self-decode verdicts diverge (seed {}, round {}): {:?}",
            seed,
            round,
            i_dec
        );
        if let (Ok(i), Ok(c)) = (i_dec, c_dec) {
            prop_assert_eq!(
                c.to_packet_value(),
                (*i).clone(),
                "decoded values diverge (seed {seed}, round {round})"
            );
        }

        // Corruption sweeps: flips, truncation, trailing garbage.
        for _ in 0..6 {
            let mut bad = frame.clone();
            match rng.random_range(0u32..4) {
                0 if !bad.is_empty() => {
                    let byte = rng.random_range(0usize..bad.len());
                    bad[byte] ^= 1 << rng.random_range(0u32..8);
                }
                1 if !bad.is_empty() => {
                    bad.truncate(rng.random_range(0usize..bad.len()));
                }
                2 => bad.push(rng.random_range(0u64..256) as u8),
                _ if !bad.is_empty() => {
                    let byte = rng.random_range(0usize..bad.len());
                    bad[byte] = rng.random_range(0u64..256) as u8;
                }
                _ => bad.push(0),
            }
            let iv = spec.decode(&bad);
            let cv = codec.decode(&bad);
            prop_assert_eq!(
                iv.is_ok(),
                cv.is_ok(),
                "decode verdicts diverge on corrupted frame (seed {}, round {}): {:?}",
                seed,
                round,
                bad
            );
            if let (Ok(i), Ok(c)) = (iv, cv) {
                prop_assert_eq!(
                    c.to_packet_value(),
                    (*i).clone(),
                    "accepted corrupted frame decodes differently (seed {seed})"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    /// Random specs: compiled and interpretive paths agree byte-for-byte
    /// (encode) and verdict-for-verdict (decode, accept and reject).
    #[test]
    fn compiled_engine_is_equivalent_to_interpreter(seed in any::<u64>()) {
        differential_case(seed)?;
    }
}

/// A handful of pinned seeds so the suite keeps covering the same
/// tricky shapes even if the ambient proptest seeding changes.
#[test]
fn pinned_seeds_stay_equivalent() {
    for seed in [0, 1, 7, 42, 1337, 0xDEAD_BEEF, u64::MAX] {
        differential_case(seed).unwrap();
    }
}
