//! The flat codec IR a [`PacketSpec`] lowers to.
//!
//! A compiled codec is a straight-line program: one [`Op`] per field, in
//! wire order, with every name resolved to a dense index at lowering
//! time. The interpreter in [`exec`](crate::exec) walks the program once
//! per frame touching only integer registers and a span table — no maps,
//! no per-field strings, no payload copies.
//!
//! Side tables keep the ops word-sized: enumerated value sets live in
//! [`CompiledCodec`]'s `enum_sets` (sorted, binary-searched) and
//! coverages in `coverages` ([`CoverageIr`], field indices in wire
//! order). Ops that can only be validated once the whole frame is
//! resolved (length fields, checksums) are listed in `deferred`, which
//! the interpreter replays as its second pass.

use std::fmt::Write as _;

use netdsl_core::packet::PacketSpec;
use netdsl_wire::checksum::ChecksumKind;

/// Dense index of a field in the compiled field table (wire order).
pub type FieldIx = u16;

/// One instruction of the flat codec program. Each op both *reads* (on
/// decode) and *writes* (on encode) exactly one field; the symmetric
/// interpretation is what keeps the program a single artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// A plain unsigned integer of `bits` width.
    Uint {
        /// Target field.
        field: FieldIx,
        /// Width in bits (1..=64).
        bits: u8,
    },
    /// A constant: emitted on encode, guarded on decode.
    Const {
        /// Target field.
        field: FieldIx,
        /// Width in bits.
        bits: u8,
        /// The required value.
        value: u64,
    },
    /// An enumerated integer; the allowed set is `enum_sets[set]`
    /// (sorted), guarded on both encode and decode.
    Enum {
        /// Target field.
        field: FieldIx,
        /// Width in bits.
        bits: u8,
        /// Index into the codec's interned enum sets.
        set: u16,
    },
    /// A computed length field over `coverages[cov]`:
    /// `value = covered_bytes / unit + bias`. Auto-filled on encode,
    /// deferred-checked on decode.
    Length {
        /// Target field.
        field: FieldIx,
        /// Width in bits.
        bits: u8,
        /// Index into the codec's interned coverages.
        cov: u16,
        /// Divisor applied to the covered byte count.
        unit: u64,
        /// Constant added after division.
        bias: i64,
    },
    /// A checksum over `coverages[cov]` with the field's own bytes
    /// zeroed. Patched on encode, deferred-checked on decode.
    Checksum {
        /// Target field.
        field: FieldIx,
        /// The checksum algorithm (fixes the width).
        kind: ChecksumKind,
        /// Index into the codec's interned coverages.
        cov: u16,
    },
    /// A byte run of exactly `len` bytes.
    BytesFixed {
        /// Target field.
        field: FieldIx,
        /// Required byte length.
        len: u32,
    },
    /// A byte run whose length derives from an earlier integer field:
    /// `byte_len = value(prefix) * unit + bias`.
    BytesPrefixed {
        /// Target field.
        field: FieldIx,
        /// The earlier integer field carrying the length.
        prefix: FieldIx,
        /// Multiplier applied to the prefix value.
        unit: i64,
        /// Constant added after scaling (may be negative).
        bias: i64,
        /// `true` when the prefix is itself a computed [`Op::Length`]
        /// field, in which case encode derives it instead of checking
        /// the caller's payload length against it.
        prefix_is_computed: bool,
    },
    /// A byte run consuming everything left in the frame (final field).
    BytesRest {
        /// Target field.
        field: FieldIx,
    },
}

impl Op {
    /// The field this op resolves.
    pub fn field(&self) -> FieldIx {
        match *self {
            Op::Uint { field, .. }
            | Op::Const { field, .. }
            | Op::Enum { field, .. }
            | Op::Length { field, .. }
            | Op::Checksum { field, .. }
            | Op::BytesFixed { field, .. }
            | Op::BytesPrefixed { field, .. }
            | Op::BytesRest { field } => field,
        }
    }

    /// Fixed bit width, or `None` for the variable byte runs.
    pub fn fixed_bits(&self) -> Option<usize> {
        match *self {
            Op::Uint { bits, .. }
            | Op::Const { bits, .. }
            | Op::Enum { bits, .. }
            | Op::Length { bits, .. } => Some(usize::from(bits)),
            Op::Checksum { kind, .. } => Some(kind.width_bits()),
            Op::BytesFixed { len, .. } => Some(len as usize * 8),
            Op::BytesPrefixed { .. } | Op::BytesRest { .. } => None,
        }
    }
}

/// A resolved coverage: which bytes of a frame a length or checksum
/// field measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverageIr {
    /// The whole frame.
    Whole,
    /// The merged byte extents of these fields (indices in wire order,
    /// so their spans are non-decreasing and merge in one pass).
    Fields(Vec<FieldIx>),
}

/// A `PacketSpec` lowered to a flat program plus its side tables —
/// produced by [`lower`](crate::lower::lower), executed by the methods
/// in [`exec`](crate::exec).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCodec {
    pub(crate) name: String,
    pub(crate) field_names: Vec<String>,
    pub(crate) ops: Vec<Op>,
    pub(crate) enum_sets: Vec<Vec<u64>>,
    pub(crate) coverages: Vec<CoverageIr>,
    /// Indices into `ops` whose constraints need the resolved frame
    /// (length, checksum) — the interpreter's second pass.
    pub(crate) deferred: Vec<u16>,
    /// Smallest structurally possible frame, in bytes.
    pub(crate) min_frame_len: usize,
    /// The source spec, kept for [`CompiledCodec::spec`] and the
    /// `PacketValue` bridges.
    pub(crate) spec: PacketSpec,
}

impl CompiledCodec {
    /// The spec name this codec was lowered from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The source [`PacketSpec`].
    pub fn spec(&self) -> &PacketSpec {
        &self.spec
    }

    /// Number of fields (and ops) in the program.
    pub fn field_count(&self) -> usize {
        self.ops.len()
    }

    /// Field names, in wire order (indexable by [`FieldIx`]).
    pub fn field_names(&self) -> &[String] {
        &self.field_names
    }

    /// Resolves a field name to its dense index.
    pub fn field_index(&self, name: &str) -> Option<FieldIx> {
        self.field_names
            .iter()
            .position(|n| n == name)
            .map(|i| i as FieldIx)
    }

    /// The flat program, one op per field in wire order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Smallest frame (in bytes) the program can structurally accept.
    pub fn min_frame_len(&self) -> usize {
        self.min_frame_len
    }

    /// Renders the program as a human-readable listing — the IR made
    /// visible, for docs, debugging and the `codec_pipeline` example.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "codec {:?}: {} ops, min frame {} B, {} deferred check(s)",
            self.name,
            self.ops.len(),
            self.min_frame_len,
            self.deferred.len()
        );
        let name_w = self
            .field_names
            .iter()
            .map(|n| n.len())
            .max()
            .unwrap_or(0)
            .max(5);
        for (i, op) in self.ops.iter().enumerate() {
            let field = &self.field_names[usize::from(op.field())];
            let desc = match op {
                Op::Uint { bits, .. } => format!("uint      bits={bits}"),
                Op::Const { bits, value, .. } => {
                    format!("const     bits={bits} value={value:#x}")
                }
                Op::Enum { bits, set, .. } => format!(
                    "enum      bits={bits} allowed={:?}",
                    self.enum_sets[usize::from(*set)]
                ),
                Op::Length {
                    bits,
                    cov,
                    unit,
                    bias,
                    ..
                } => format!(
                    "length    bits={bits} unit={unit} bias={bias} cover={}",
                    self.coverage_label(*cov)
                ),
                Op::Checksum { kind, cov, .. } => {
                    format!(
                        "checksum  kind={kind:?} cover={}",
                        self.coverage_label(*cov)
                    )
                }
                Op::BytesFixed { len, .. } => format!("bytes     fixed={len}"),
                Op::BytesPrefixed {
                    prefix,
                    unit,
                    bias,
                    prefix_is_computed,
                    ..
                } => format!(
                    "bytes     prefixed-by={}{} unit={unit} bias={bias}",
                    self.field_names[usize::from(*prefix)],
                    if *prefix_is_computed {
                        " (computed)"
                    } else {
                        ""
                    }
                ),
                Op::BytesRest { .. } => "bytes     rest".to_string(),
            };
            let _ = writeln!(out, "  {i:03}  {field:<name_w$}  {desc}");
        }
        out
    }

    fn coverage_label(&self, cov: u16) -> String {
        match &self.coverages[usize::from(cov)] {
            CoverageIr::Whole => "whole-frame".to_string(),
            CoverageIr::Fields(ixs) => {
                let names: Vec<&str> = ixs
                    .iter()
                    .map(|&ix| self.field_names[usize::from(ix)].as_str())
                    .collect();
                format!("fields({})", names.join(","))
            }
        }
    }
}
