//! # netdsl-codec — the compiled codec engine
//!
//! The paper's first pillar is that packet descriptions carry their
//! semantic constraints so that *parsing is validating*. The
//! interpretive executor of that claim
//! ([`PacketSpec::decode`](netdsl_core::packet::PacketSpec::decode))
//! re-walks the field tree, allocates a name-keyed
//! [`PacketValue`](netdsl_core::packet::PacketValue) and copies every
//! payload byte on each frame. This crate keeps the *same semantics*
//! but treats the spec as **compiler input** instead:
//!
//! * [`lower()`](lower()) compiles a `PacketSpec` into a
//!   [`CompiledCodec`] — a
//!   flat [`Op`] program with every field name resolved to a dense
//!   index and every coverage resolved to index lists, once;
//! * the register-style interpreter executes that program over borrowed
//!   `&[u8]` frames with **zero-copy decode** (a [`FieldView`] of
//!   offsets/lengths into the frame instead of an allocated map) and
//!   batch APIs ([`CompiledCodec::decode_batch`],
//!   [`CompiledCodec::encode_into`]) that reuse caller buffers.
//!
//! Accept/reject verdicts match the interpretive walker frame-for-frame
//! and encoded frames are byte-identical (pinned by the differential
//! proptest suite in `tests/differential.rs`); experiment **E12**
//! (`e12_codec_throughput`) measures the speedup. The lowering pattern
//! follows `reo_rs`' move from interpreting a coordination DSL to
//! compiling it into executable structures. See `docs/CODEC.md` for the
//! op table, lowering rules and the zero-copy contract.
//!
//! ```
//! use netdsl_codec::lower;
//! use netdsl_core::packet::{Coverage, Len, PacketSpec, Value};
//! use netdsl_wire::checksum::ChecksumKind;
//!
//! let spec = PacketSpec::builder("arq")
//!     .uint("seq", 8)
//!     .checksum("chk", ChecksumKind::Arq, Coverage::Whole)
//!     .bytes("data", Len::Rest)
//!     .build()
//!     .unwrap();
//! let codec = lower(&spec).unwrap();
//!
//! // Encode through the interpretive path, decode zero-copy.
//! let mut v = spec.value();
//! v.set("seq", Value::Uint(7));
//! v.set("data", Value::Bytes(b"hello".to_vec()));
//! let wire = spec.encode(&v).unwrap();
//!
//! let frame = codec.decode(&wire).unwrap();
//! assert_eq!(frame.uint("seq"), Some(7));
//! assert_eq!(frame.bytes("data"), Some(&b"hello"[..])); // borrowed, not copied
//!
//! // Corruption is rejected by the same compiled program.
//! let mut bad = wire.clone();
//! bad[3] ^= 1;
//! assert!(codec.decode(&bad).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod ir;
pub mod lower;

pub use exec::{BatchSummary, FieldView, Frame, Values};
pub use ir::{CompiledCodec, CoverageIr, FieldIx, Op};
pub use lower::lower;

#[cfg(test)]
mod tests {
    use super::*;
    use netdsl_core::packet::{Coverage, Len, PacketSpec, Value};
    use netdsl_core::DslError;
    use netdsl_wire::checksum::ChecksumKind;

    fn arq_spec() -> PacketSpec {
        PacketSpec::builder("arq")
            .enumerated("kind", 8, &[1, 2])
            .uint("seq", 8)
            .checksum(
                "chk",
                ChecksumKind::Arq,
                Coverage::Fields(vec!["kind".into(), "seq".into(), "payload".into()]),
            )
            .bytes("payload", Len::Rest)
            .build()
            .unwrap()
    }

    fn ipv4ish_spec() -> PacketSpec {
        PacketSpec::builder("ipv4ish")
            .constant("version", 4, 4)
            .length_scaled(
                "ihl",
                4,
                Coverage::Fields(vec![
                    "version".into(),
                    "ihl".into(),
                    "total_length".into(),
                    "checksum".into(),
                ]),
                4,
                0,
            )
            .length("total_length", 16, Coverage::Whole)
            .checksum("checksum", ChecksumKind::Internet, Coverage::Whole)
            .bytes("payload", Len::Rest)
            .build()
            .unwrap()
    }

    #[test]
    fn lowering_resolves_names_and_defers_checks() {
        let codec = lower(&arq_spec()).unwrap();
        assert_eq!(codec.name(), "arq");
        assert_eq!(codec.field_count(), 4);
        assert_eq!(codec.field_index("chk"), Some(2));
        assert_eq!(codec.min_frame_len(), 3);
        assert!(matches!(codec.ops()[0], Op::Enum { bits: 8, .. }));
        assert!(matches!(codec.ops()[3], Op::BytesRest { .. }));
        // Exactly the checksum is deferred.
        assert_eq!(codec.disassemble().matches("checksum").count(), 1);
    }

    #[test]
    fn compiled_decode_matches_interpretive_accept() {
        let spec = arq_spec();
        let codec = lower(&spec).unwrap();
        let mut v = spec.value();
        v.set("kind", Value::Uint(1));
        v.set("seq", Value::Uint(9));
        v.set("payload", Value::Bytes(b"abc".to_vec()));
        let wire = spec.encode(&v).unwrap();

        let frame = codec.decode(&wire).unwrap();
        assert_eq!(frame.uint("kind"), Some(1));
        assert_eq!(frame.uint("seq"), Some(9));
        assert_eq!(frame.bytes("payload"), Some(&b"abc"[..]));
        // Span table points into the original frame.
        let payload = frame.bytes("payload").unwrap();
        let base = wire.as_ptr() as usize;
        let p = payload.as_ptr() as usize;
        assert!(p >= base && p < base + wire.len(), "zero-copy payload");
        // Round-trip through the owned bridge equals interpretive decode.
        assert_eq!(frame.to_packet_value(), *spec.decode(&wire).unwrap());
    }

    #[test]
    fn compiled_decode_rejects_what_interpretive_rejects() {
        let spec = arq_spec();
        let codec = lower(&spec).unwrap();
        let mut v = spec.value();
        v.set("kind", Value::Uint(2));
        v.set("seq", Value::Uint(1));
        v.set("payload", Value::Bytes(vec![5, 6, 7]));
        let wire = spec.encode(&v).unwrap();
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut bad = wire.clone();
                bad[byte] ^= 1 << bit;
                assert_eq!(
                    codec.decode(&bad).is_ok(),
                    spec.decode(&bad).is_ok(),
                    "verdicts diverge at byte {byte} bit {bit}"
                );
            }
        }
        assert!(codec.decode(&[]).is_err());
        assert!(codec.decode(&wire[..2]).is_err());
    }

    #[test]
    fn compiled_encode_is_byte_identical() {
        let spec = ipv4ish_spec();
        let codec = lower(&spec).unwrap();
        let mut v = spec.value();
        v.set("payload", Value::Bytes(vec![1, 2, 3, 4, 5]));
        let interpretive = spec.encode(&v).unwrap();
        let compiled = codec.encode_packet_value(&v).unwrap();
        assert_eq!(compiled, interpretive);
        assert!(spec.decode(&compiled).is_ok());
        assert!(codec.decode(&interpretive).is_ok());
    }

    #[test]
    fn encode_into_reuses_the_buffer() {
        let spec = arq_spec();
        let codec = lower(&spec).unwrap();
        let payload = vec![7u8; 32];
        let mut values = codec.values();
        values
            .set_uint(codec.field_index("kind").unwrap(), 1)
            .set_uint(codec.field_index("seq").unwrap(), 3)
            .set_bytes(codec.field_index("payload").unwrap(), &payload);
        let mut out = Vec::new();
        codec.encode_into(&values, &mut out).unwrap();
        let first = out.clone();
        let cap = out.capacity();
        let ptr = out.as_ptr();
        codec.encode_into(&values, &mut out).unwrap();
        assert_eq!(out, first, "stable output");
        assert_eq!(out.capacity(), cap, "no regrowth");
        assert_eq!(out.as_ptr(), ptr, "no reallocation");
    }

    #[test]
    fn encode_guards_mirror_interpretive_errors() {
        let spec = arq_spec();
        let codec = lower(&spec).unwrap();
        // Missing payload.
        let mut values = codec.values();
        values
            .set_uint(codec.field_index("kind").unwrap(), 1)
            .set_uint(codec.field_index("seq").unwrap(), 0);
        assert!(matches!(
            codec.encode(&values),
            Err(DslError::MissingField { .. })
        ));
        // Enum violation.
        let empty: &[u8] = &[];
        values.set_bytes(codec.field_index("payload").unwrap(), empty);
        values.set_uint(codec.field_index("kind").unwrap(), 3);
        assert!(matches!(
            codec.encode(&values),
            Err(DslError::InvalidEnumValue { .. })
        ));
    }

    #[test]
    fn decode_batch_reuses_one_view_and_counts() {
        let spec = arq_spec();
        let codec = lower(&spec).unwrap();
        let mut frames: Vec<Vec<u8>> = Vec::new();
        for i in 0..10u64 {
            let mut v = spec.value();
            v.set("kind", Value::Uint(1 + i % 2));
            v.set("seq", Value::Uint(i));
            v.set("payload", Value::Bytes(vec![i as u8; i as usize]));
            frames.push(spec.encode(&v).unwrap());
        }
        frames[3][0] ^= 0xFF; // corrupt one
        let mut seen_ok = 0;
        let summary = codec.decode_batch(
            frames.iter().map(Vec::as_slice),
            |i, frame, res| match res {
                Ok(view) => {
                    seen_ok += 1;
                    assert_eq!(view.uint(1), i as u64, "seq register");
                    assert_eq!(view.bytes(frame, 3).len(), i);
                }
                Err(_) => assert_eq!(i, 3, "only the corrupted frame rejects"),
            },
        );
        assert_eq!(summary.frames, 10);
        assert_eq!(summary.accepted, 9);
        assert_eq!(summary.rejected, 1);
        assert_eq!(seen_ok, 9);
        assert!((summary.accept_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn prefixed_and_fixed_byte_runs_roundtrip() {
        let spec = PacketSpec::builder("udpish")
            .uint("port", 16)
            .length_scaled("length", 16, Coverage::Whole, 1, 0)
            .bytes(
                "body",
                Len::Prefixed {
                    field: "length".into(),
                    unit: 1,
                    bias: -4,
                },
            )
            .build()
            .unwrap();
        let codec = lower(&spec).unwrap();
        let mut v = spec.value();
        v.set("port", Value::Uint(53));
        v.set("body", Value::Bytes(b"dns".to_vec()));
        let wire = spec.encode(&v).unwrap();
        assert_eq!(codec.encode_packet_value(&v).unwrap(), wire);
        let frame = codec.decode(&wire).unwrap();
        assert_eq!(frame.bytes("body"), Some(&b"dns"[..]));
        // Truncated prefix run rejects in both paths.
        assert!(codec.decode(&wire[..5]).is_err());
        assert!(spec.decode(&wire[..5]).is_err());
    }

    #[test]
    fn disassembly_lists_every_op() {
        let codec = lower(&ipv4ish_spec()).unwrap();
        let asm = codec.disassemble();
        for name in ["version", "ihl", "total_length", "checksum", "payload"] {
            assert!(asm.contains(name), "{asm}");
        }
        assert!(asm.contains("whole-frame"));
        assert!(asm.contains("const"));
        assert!(asm.contains("rest"));
    }

    #[test]
    fn sub_byte_coverage_matches_interpretive() {
        let spec = PacketSpec::builder("s")
            .uint("hi", 4)
            .uint("lo", 4)
            .checksum("ck", ChecksumKind::Arq, Coverage::Fields(vec!["hi".into()]))
            .build()
            .unwrap();
        let codec = lower(&spec).unwrap();
        let mut v = spec.value();
        v.set("hi", Value::Uint(0xA));
        v.set("lo", Value::Uint(0xB));
        let wire = spec.encode(&v).unwrap();
        assert_eq!(codec.encode_packet_value(&v).unwrap(), wire);
        assert!(codec.decode(&wire).is_ok());
    }
}
