//! The register-style interpreter over a [`CompiledCodec`] program.
//!
//! **Decode** is zero-copy: one structural pass reads every field into a
//! reusable [`FieldView`] — a register file of integer values plus a
//! span table of bit offsets/widths into the borrowed frame — with
//! constant and enum guards applied inline; a second pass replays the
//! program's deferred checks (length fields, checksums) against the
//! resolved spans. Payload bytes are never copied: [`FieldView::bytes`]
//! returns a slice of the caller's frame.
//!
//! **Encode** writes into a caller-supplied buffer
//! ([`CompiledCodec::encode_into`]) from an indexed [`Values`] table,
//! then patches checksums in place through the streaming
//! [`ChecksumEngine`] — no intermediate allocations once the buffer has
//! grown to the working frame size.
//!
//! **Batches** amortise the one small allocation decode needs (the view
//! itself): [`CompiledCodec::decode_batch`] reuses a single view across
//! every frame and hands each result to a sink.
//!
//! Verdict equivalence with the interpretive
//! [`PacketSpec`](netdsl_core::packet::PacketSpec) walker
//! (accept/reject on decode, byte-identical frames on encode) is pinned
//! by the differential proptest suite in `tests/differential.rs`.

use netdsl_core::packet::{PacketValue, Value};
use netdsl_core::DslError;
use netdsl_obs::Counter;
use netdsl_wire::checksum::ChecksumEngine;
use netdsl_wire::{BitReader, BitWriter, WireError};

use crate::ir::{CompiledCodec, CoverageIr, FieldIx, Op};

static FRAMES_DECODED: Counter = Counter::new("codec.frames_decoded");
static FRAMES_ACCEPTED: Counter = Counter::new("codec.frames_accepted");
static FRAMES_REJECTED: Counter = Counter::new("codec.frames_rejected");

/// Reusable zero-copy decode output: per-field integer registers plus
/// bit spans into the decoded frame. Create once, pass to
/// [`CompiledCodec::decode_into`] per frame.
#[derive(Debug, Clone, Default)]
pub struct FieldView {
    /// Decoded integer per field (0 for byte-run fields).
    regs: Vec<u64>,
    /// Bit offset of each field in the frame.
    offs: Vec<u32>,
    /// Bit width of each field in the frame.
    widths: Vec<u32>,
}

impl FieldView {
    /// An empty view (sized on first decode).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, fields: usize) {
        self.regs.clear();
        self.regs.resize(fields, 0);
        self.offs.clear();
        self.offs.resize(fields, 0);
        self.widths.clear();
        self.widths.resize(fields, 0);
    }

    /// Number of fields resolved by the last decode.
    pub fn field_count(&self) -> usize {
        self.regs.len()
    }

    /// The decoded integer register of field `ix` (0 for byte runs).
    pub fn uint(&self, ix: FieldIx) -> u64 {
        self.regs[usize::from(ix)]
    }

    /// Bit `(offset, width)` of field `ix` in the frame.
    pub fn bit_span(&self, ix: FieldIx) -> (usize, usize) {
        let i = usize::from(ix);
        (self.offs[i] as usize, self.widths[i] as usize)
    }

    /// Byte range `[start, end)` covering field `ix` (sub-byte fields
    /// cover their containing bytes, matching the interpretive layout).
    pub fn byte_range(&self, ix: FieldIx) -> (usize, usize) {
        let (off, width) = self.bit_span(ix);
        (off / 8, (off + width).div_ceil(8))
    }

    /// The bytes of field `ix`, borrowed straight from `frame` — the
    /// zero-copy contract. `frame` must be the slice this view was
    /// decoded from; nothing else holds meaningful spans.
    pub fn bytes<'f>(&self, frame: &'f [u8], ix: FieldIx) -> &'f [u8] {
        let (s, e) = self.byte_range(ix);
        &frame[s..e]
    }

    fn record(&mut self, field: FieldIx, off: usize, width: usize) {
        let i = usize::from(field);
        self.offs[i] = off as u32;
        self.widths[i] = width as u32;
    }
}

/// A decoded frame: the borrowed wire bytes plus an owned [`FieldView`]
/// and the codec for by-name access. Produced by
/// [`CompiledCodec::decode`]; hot paths that want to amortise the view
/// allocation use [`CompiledCodec::decode_into`] or
/// [`CompiledCodec::decode_batch`] directly.
#[derive(Debug, Clone)]
pub struct Frame<'c, 'f> {
    codec: &'c CompiledCodec,
    raw: &'f [u8],
    view: FieldView,
}

impl<'c, 'f> Frame<'c, 'f> {
    /// The wire bytes this frame was decoded from.
    pub fn raw(&self) -> &'f [u8] {
        self.raw
    }

    /// The underlying span table.
    pub fn view(&self) -> &FieldView {
        &self.view
    }

    /// Integer value of the named field (`None` for unknown names or
    /// byte-run fields).
    pub fn uint(&self, name: &str) -> Option<u64> {
        let ix = self.codec.field_index(name)?;
        match self.codec.ops[usize::from(ix)] {
            Op::BytesFixed { .. } | Op::BytesPrefixed { .. } | Op::BytesRest { .. } => None,
            _ => Some(self.view.uint(ix)),
        }
    }

    /// Bytes of the named byte-run field, borrowed from the frame
    /// (`None` for unknown names or integer fields).
    pub fn bytes(&self, name: &str) -> Option<&'f [u8]> {
        let ix = self.codec.field_index(name)?;
        match self.codec.ops[usize::from(ix)] {
            Op::BytesFixed { .. } | Op::BytesPrefixed { .. } | Op::BytesRest { .. } => {
                Some(self.view.bytes(self.raw, ix))
            }
            _ => None,
        }
    }

    /// Materialises an owned [`PacketValue`] (copies byte fields) — the
    /// bridge back to the interpretive representation, used by the
    /// differential tests.
    pub fn to_packet_value(&self) -> PacketValue {
        let mut pv = PacketValue::new();
        for (i, op) in self.codec.ops.iter().enumerate() {
            let name = &self.codec.field_names[i];
            match op {
                Op::BytesFixed { .. } | Op::BytesPrefixed { .. } | Op::BytesRest { .. } => {
                    pv.set(
                        name,
                        Value::Bytes(self.view.bytes(self.raw, i as FieldIx).to_vec()),
                    );
                }
                _ => {
                    pv.set(name, Value::Uint(self.view.uint(i as FieldIx)));
                }
            }
        }
        pv
    }
}

/// Aggregate outcome of one [`CompiledCodec::decode_batch`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchSummary {
    /// Frames examined.
    pub frames: usize,
    /// Frames that decoded and validated.
    pub accepted: usize,
    /// Frames rejected by any structural or semantic check.
    pub rejected: usize,
    /// Total wire bytes examined.
    pub bytes: u64,
}

impl BatchSummary {
    /// Fraction of frames accepted (0 for an empty batch).
    pub fn accept_ratio(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.accepted as f64 / self.frames as f64
        }
    }
}

/// Indexed value table feeding [`CompiledCodec::encode_into`] — the
/// compiled counterpart of [`PacketValue`], keyed by [`FieldIx`] so the
/// encoder never hashes or compares a name. Byte fields borrow the
/// caller's buffers. Obtain one via [`CompiledCodec::values`] and
/// [`Values::clear`] it between frames.
#[derive(Debug, Clone)]
pub struct Values<'v> {
    slots: Vec<Slot<'v>>,
}

#[derive(Debug, Clone, Copy)]
enum Slot<'v> {
    Unset,
    Uint(u64),
    Bytes(&'v [u8]),
}

impl<'v> Values<'v> {
    fn new(fields: usize) -> Self {
        Values {
            slots: vec![Slot::Unset; fields],
        }
    }

    /// Sets an integer field.
    pub fn set_uint(&mut self, ix: FieldIx, v: u64) -> &mut Self {
        self.slots[usize::from(ix)] = Slot::Uint(v);
        self
    }

    /// Sets a byte-run field (borrowing the caller's bytes).
    pub fn set_bytes(&mut self, ix: FieldIx, b: &'v [u8]) -> &mut Self {
        self.slots[usize::from(ix)] = Slot::Bytes(b);
        self
    }

    /// Unsets every slot, keeping the allocation.
    pub fn clear(&mut self) {
        self.slots.fill(Slot::Unset);
    }

    fn uint(&self, ix: FieldIx, name: &str) -> Result<u64, DslError> {
        match self.slots[usize::from(ix)] {
            Slot::Uint(v) => Ok(v),
            Slot::Bytes(_) => Err(DslError::WrongKind {
                field: name.to_string(),
            }),
            Slot::Unset => Err(DslError::MissingField {
                field: name.to_string(),
            }),
        }
    }

    fn bytes(&self, ix: FieldIx, name: &str) -> Result<&'v [u8], DslError> {
        match self.slots[usize::from(ix)] {
            Slot::Bytes(b) => Ok(b),
            Slot::Uint(_) => Err(DslError::WrongKind {
                field: name.to_string(),
            }),
            Slot::Unset => Err(DslError::MissingField {
                field: name.to_string(),
            }),
        }
    }
}

impl CompiledCodec {
    /// An empty [`Values`] table sized for this codec's fields.
    #[must_use]
    pub fn values(&self) -> Values<'static> {
        Values::new(self.field_count())
    }

    /// Builds a [`Values`] table from a by-name [`PacketValue`]
    /// (borrowing its byte fields). Names that are not fields of this
    /// codec are ignored, mirroring interpretive encode; values for
    /// computed fields are likewise ignored by the encoder itself.
    pub fn values_from<'v>(&self, pv: &'v PacketValue) -> Values<'v> {
        let mut values = Values::new(self.field_count());
        for (name, v) in pv.iter() {
            if let Some(ix) = self.field_index(name) {
                match v {
                    Value::Uint(u) => {
                        values.set_uint(ix, *u);
                    }
                    Value::Bytes(b) => {
                        values.set_bytes(ix, b);
                    }
                }
            }
        }
        values
    }

    /// Decodes and fully validates `frame` into the reusable `view` —
    /// the zero-copy primitive behind [`CompiledCodec::decode`] and
    /// [`CompiledCodec::decode_batch`]. On success the view's registers
    /// and spans describe `frame`; on error its contents are
    /// unspecified.
    ///
    /// # Errors
    ///
    /// The same classes as
    /// [`PacketSpec::decode`](netdsl_core::packet::PacketSpec::decode):
    /// wire errors for
    /// truncation or trailing bytes, [`DslError::ConstMismatch`],
    /// [`DslError::InvalidEnumValue`], [`DslError::LengthFieldMismatch`]
    /// and [`DslError::ChecksumFailed`]. Accept/reject verdicts agree
    /// with the interpretive walker frame-for-frame.
    pub fn decode_into(&self, frame: &[u8], view: &mut FieldView) -> Result<(), DslError> {
        view.reset(self.ops.len());
        if frame.len() < self.min_frame_len {
            // The structural pass would fail partway; fail fast with the
            // same error class (truncation).
            return Err(DslError::Wire(WireError::UnexpectedEnd {
                requested: self.min_frame_len * 8 - frame.len() * 8,
                available: 0,
            }));
        }
        let mut reader = BitReader::new(frame);

        // Pass 1: structural resolution with inline guards.
        for op in &self.ops {
            let off = reader.bit_position();
            match *op {
                Op::Uint { field, bits } => {
                    let v = reader.read_bits(usize::from(bits))?;
                    view.regs[usize::from(field)] = v;
                    view.record(field, off, usize::from(bits));
                }
                Op::Const { field, bits, value } => {
                    let v = reader.read_bits(usize::from(bits))?;
                    view.regs[usize::from(field)] = v;
                    view.record(field, off, usize::from(bits));
                    if v != value {
                        return Err(DslError::ConstMismatch {
                            field: self.field_names[usize::from(field)].clone(),
                            expected: value,
                            found: v,
                        });
                    }
                }
                Op::Enum { field, bits, set } => {
                    let v = reader.read_bits(usize::from(bits))?;
                    view.regs[usize::from(field)] = v;
                    view.record(field, off, usize::from(bits));
                    if self.enum_sets[usize::from(set)].binary_search(&v).is_err() {
                        return Err(DslError::InvalidEnumValue {
                            field: self.field_names[usize::from(field)].clone(),
                            value: v,
                        });
                    }
                }
                Op::Length { field, bits, .. } => {
                    let v = reader.read_bits(usize::from(bits))?;
                    view.regs[usize::from(field)] = v;
                    view.record(field, off, usize::from(bits));
                }
                Op::Checksum { field, kind, .. } => {
                    let bits = kind.width_bits();
                    let v = reader.read_bits(bits)?;
                    view.regs[usize::from(field)] = v;
                    view.record(field, off, bits);
                }
                Op::BytesFixed { field, len } => {
                    reader.read_bytes(len as usize)?;
                    view.record(field, off, len as usize * 8);
                }
                Op::BytesPrefixed {
                    field,
                    prefix,
                    unit,
                    bias,
                    ..
                } => {
                    let n = prefixed_len(
                        view.regs[usize::from(prefix)],
                        unit,
                        bias,
                        &self.field_names[usize::from(prefix)],
                    )?;
                    reader.read_bytes(n)?;
                    view.record(field, off, n * 8);
                }
                Op::BytesRest { field } => {
                    let n = reader.remaining_bits() / 8;
                    reader.read_bytes(n)?;
                    view.record(field, off, n * 8);
                }
            }
        }
        if !reader.is_empty() {
            return Err(DslError::Wire(WireError::LengthMismatch {
                declared: reader.bit_position() / 8,
                actual: frame.len(),
            }));
        }

        // Pass 2: deferred checks over the resolved spans.
        for &op_ix in &self.deferred {
            match self.ops[usize::from(op_ix)] {
                Op::Length {
                    field,
                    cov,
                    unit,
                    bias,
                    ..
                } => {
                    let covered = self.covered_len(cov, view, frame.len()) as u64;
                    let expect = (covered / unit) as i64 + bias;
                    let found = view.regs[usize::from(field)] as i64;
                    if found != expect {
                        return Err(DslError::LengthFieldMismatch {
                            field: self.field_names[usize::from(field)].clone(),
                            declared: found.max(0) as usize,
                            actual: expect.max(0) as usize,
                        });
                    }
                }
                Op::Checksum { field, kind, cov } => {
                    let computed = self.checksum_over(cov, field, kind, view, frame);
                    if computed != view.regs[usize::from(field)] {
                        return Err(DslError::ChecksumFailed {
                            field: self.field_names[usize::from(field)].clone(),
                        });
                    }
                }
                _ => unreachable!("only length/checksum ops are deferred"),
            }
        }
        Ok(())
    }

    /// Decodes and validates `frame`, returning a zero-copy [`Frame`]
    /// with by-name accessors. Allocates one fresh [`FieldView`]; batch
    /// paths prefer [`CompiledCodec::decode_into`] /
    /// [`CompiledCodec::decode_batch`].
    ///
    /// # Errors
    ///
    /// As for [`CompiledCodec::decode_into`].
    pub fn decode<'c, 'f>(&'c self, frame: &'f [u8]) -> Result<Frame<'c, 'f>, DslError> {
        let mut view = FieldView::new();
        self.decode_into(frame, &mut view)?;
        Ok(Frame {
            codec: self,
            raw: frame,
            view,
        })
    }

    /// Decodes every frame of a batch through one reused [`FieldView`],
    /// handing each outcome to `sink` as
    /// `(index, frame, Ok(&view) | Err(&error))`, and returns the
    /// aggregate [`BatchSummary`]. Steady-state this performs no
    /// allocation per frame.
    pub fn decode_batch<'f, I, F>(&self, frames: I, mut sink: F) -> BatchSummary
    where
        I: IntoIterator<Item = &'f [u8]>,
        F: FnMut(usize, &'f [u8], Result<&FieldView, &DslError>),
    {
        let mut view = FieldView::new();
        let mut summary = BatchSummary::default();
        for (i, frame) in frames.into_iter().enumerate() {
            summary.frames += 1;
            summary.bytes += frame.len() as u64;
            match self.decode_into(frame, &mut view) {
                Ok(()) => {
                    summary.accepted += 1;
                    sink(i, frame, Ok(&view));
                }
                Err(e) => {
                    summary.rejected += 1;
                    sink(i, frame, Err(&e));
                }
            }
        }
        // One update per batch, not per frame: the counters self-gate
        // on the global metrics switch, so a disabled run pays three
        // branches per batch.
        FRAMES_DECODED.add(summary.frames as u64);
        FRAMES_ACCEPTED.add(summary.accepted as u64);
        FRAMES_REJECTED.add(summary.rejected as u64);
        summary
    }

    /// Encodes `values` into `out` (cleared first, allocation reused) —
    /// computed fields (constants, lengths, checksums) are filled in by
    /// the program; supplied values for them are ignored.
    ///
    /// # Errors
    ///
    /// The same classes as interpretive encode: [`DslError::MissingField`]
    /// / [`DslError::WrongKind`] for absent or ill-typed values,
    /// [`DslError::LengthFieldMismatch`] for fixed/prefixed length
    /// disagreements, [`DslError::InvalidEnumValue`] for enum
    /// violations, [`DslError::Wire`] for width overflows. Frames
    /// produced for accepted values are byte-identical to
    /// [`PacketSpec::encode`](netdsl_core::packet::PacketSpec::encode).
    pub fn encode_into(&self, values: &Values<'_>, out: &mut Vec<u8>) -> Result<(), DslError> {
        // Pass 0: resolve every field's width and bit offset.
        let mut spans: Vec<(u32, u32)> = Vec::with_capacity(self.ops.len());
        let mut off = 0usize;
        for op in &self.ops {
            let width = match *op {
                Op::BytesFixed { field, len } => {
                    let name = &self.field_names[usize::from(field)];
                    let b = values.bytes(field, name)?;
                    if b.len() != len as usize {
                        return Err(DslError::LengthFieldMismatch {
                            field: name.clone(),
                            declared: len as usize,
                            actual: b.len(),
                        });
                    }
                    b.len() * 8
                }
                Op::BytesPrefixed {
                    field,
                    prefix,
                    unit,
                    bias,
                    prefix_is_computed,
                } => {
                    let name = &self.field_names[usize::from(field)];
                    let b = values.bytes(field, name)?;
                    // A caller-supplied prefix must agree with the
                    // payload; a computed (Length) prefix is derived, and
                    // decode re-verifies the relationship from the other
                    // side — mirroring the interpretive encoder.
                    if !prefix_is_computed {
                        let prefix_name = &self.field_names[usize::from(prefix)];
                        let v = values.uint(prefix, prefix_name)?;
                        let expect = prefixed_len(v, unit, bias, prefix_name)?;
                        if expect != b.len() {
                            return Err(DslError::LengthFieldMismatch {
                                field: name.clone(),
                                declared: expect,
                                actual: b.len(),
                            });
                        }
                    }
                    b.len() * 8
                }
                Op::BytesRest { field } => {
                    let name = &self.field_names[usize::from(field)];
                    values.bytes(field, name)?.len() * 8
                }
                _ => op.fixed_bits().expect("non-byte ops are fixed-width"),
            };
            spans.push((off as u32, width as u32));
            off += width;
        }
        let frame_len = off / 8;

        // Pass 1: serialise, leaving checksums zeroed.
        let mut writer = BitWriter::from_vec(std::mem::take(out));
        for op in &self.ops {
            match *op {
                Op::Uint { field, bits } => {
                    let name = &self.field_names[usize::from(field)];
                    writer.write_bits(values.uint(field, name)?, usize::from(bits))?;
                }
                Op::Const { bits, value, .. } => {
                    writer.write_bits(value, usize::from(bits))?;
                }
                Op::Enum { field, bits, set } => {
                    let name = &self.field_names[usize::from(field)];
                    let v = values.uint(field, name)?;
                    if self.enum_sets[usize::from(set)].binary_search(&v).is_err() {
                        return Err(DslError::InvalidEnumValue {
                            field: name.clone(),
                            value: v,
                        });
                    }
                    writer.write_bits(v, usize::from(bits))?;
                }
                Op::Length {
                    field,
                    bits,
                    cov,
                    unit,
                    bias,
                } => {
                    let covered = self.covered_len_spans(cov, &spans, frame_len) as u64;
                    let v = (covered / unit) as i64 + bias;
                    if v < 0 {
                        return Err(DslError::LengthFieldMismatch {
                            field: self.field_names[usize::from(field)].clone(),
                            declared: 0,
                            actual: covered as usize,
                        });
                    }
                    writer.write_bits(v as u64, usize::from(bits))?;
                }
                Op::Checksum { kind, .. } => {
                    writer.write_bits(0, kind.width_bits())?;
                }
                Op::BytesFixed { field, .. }
                | Op::BytesPrefixed { field, .. }
                | Op::BytesRest { field } => {
                    let name = &self.field_names[usize::from(field)];
                    writer.write_bytes(values.bytes(field, name)?)?;
                }
            }
        }
        let mut frame = writer.into_bytes();

        // Pass 2: patch checksums in field order. Each one's own bytes
        // are still zero when it is computed (patched only afterwards),
        // so streaming the covered ranges directly implements the
        // "own field zeroed" rule without a scratch buffer.
        for &op_ix in &self.deferred {
            if let Op::Checksum { field, kind, cov } = self.ops[usize::from(op_ix)] {
                let mut engine = ChecksumEngine::new(kind);
                self.for_each_covered_range_spans(cov, &spans, frame_len, |s, e| {
                    engine.update(&frame[s..e]);
                });
                let value = engine.finish();
                let (bit_off, _) = spans[usize::from(field)];
                let s = bit_off as usize / 8;
                let nbytes = kind.width_bits() / 8;
                let be = value.to_be_bytes();
                frame[s..s + nbytes].copy_from_slice(&be[8 - nbytes..]);
            }
        }
        *out = frame;
        Ok(())
    }

    /// Encodes `values` into a fresh frame (see
    /// [`CompiledCodec::encode_into`] for the buffer-reusing form).
    ///
    /// # Errors
    ///
    /// As for [`CompiledCodec::encode_into`].
    pub fn encode(&self, values: &Values<'_>) -> Result<Vec<u8>, DslError> {
        let mut out = Vec::new();
        self.encode_into(values, &mut out)?;
        Ok(out)
    }

    /// Encodes a by-name [`PacketValue`] — the bridge used by the
    /// differential tests and by code migrating from the interpretive
    /// path.
    ///
    /// # Errors
    ///
    /// As for [`CompiledCodec::encode_into`].
    pub fn encode_packet_value(&self, pv: &PacketValue) -> Result<Vec<u8>, DslError> {
        self.encode(&self.values_from(pv))
    }

    /// Streams `f` over the merged byte ranges of coverage `cov`
    /// resolved against a decoded view.
    fn for_each_covered_range(
        &self,
        cov: u16,
        view: &FieldView,
        frame_len: usize,
        f: impl FnMut(usize, usize),
    ) {
        match &self.coverages[usize::from(cov)] {
            CoverageIr::Whole => whole_range(frame_len, f),
            CoverageIr::Fields(ixs) => {
                merge_ranges(ixs.iter().map(|&ix| view.byte_range(ix)), f);
            }
        }
    }

    /// As [`Self::for_each_covered_range`] but over encode-time spans.
    fn for_each_covered_range_spans(
        &self,
        cov: u16,
        spans: &[(u32, u32)],
        frame_len: usize,
        f: impl FnMut(usize, usize),
    ) {
        match &self.coverages[usize::from(cov)] {
            CoverageIr::Whole => whole_range(frame_len, f),
            CoverageIr::Fields(ixs) => {
                merge_ranges(
                    ixs.iter().map(|&ix| {
                        let (off, width) = spans[usize::from(ix)];
                        (
                            off as usize / 8,
                            (off as usize + width as usize).div_ceil(8),
                        )
                    }),
                    f,
                );
            }
        }
    }

    fn covered_len(&self, cov: u16, view: &FieldView, frame_len: usize) -> usize {
        let mut total = 0usize;
        self.for_each_covered_range(cov, view, frame_len, |s, e| total += e - s);
        total
    }

    fn covered_len_spans(&self, cov: u16, spans: &[(u32, u32)], frame_len: usize) -> usize {
        let mut total = 0usize;
        self.for_each_covered_range_spans(cov, spans, frame_len, |s, e| total += e - s);
        total
    }

    /// Computes the checksum for `field` over its coverage with the
    /// field's own bytes zeroed, streaming straight off the frame.
    fn checksum_over(
        &self,
        cov: u16,
        field: FieldIx,
        kind: netdsl_wire::checksum::ChecksumKind,
        view: &FieldView,
        frame: &[u8],
    ) -> u64 {
        let (own_s, own_e) = view.byte_range(field);
        let mut engine = ChecksumEngine::new(kind);
        self.for_each_covered_range(cov, view, frame.len(), |s, e| {
            let zs = own_s.clamp(s, e);
            let ze = own_e.clamp(s, e);
            if ze <= zs {
                engine.update(&frame[s..e]);
            } else {
                engine.update(&frame[s..zs]);
                engine.update_zeros(ze - zs);
                engine.update(&frame[ze..e]);
            }
        });
        engine.finish()
    }
}

/// Byte length of a prefixed run: `value * unit + bias`, with the same
/// overflow/negativity errors as the interpretive `bytes_len`.
fn prefixed_len(value: u64, unit: i64, bias: i64, prefix_name: &str) -> Result<usize, DslError> {
    let v = value as i64;
    let n = v
        .checked_mul(unit)
        .and_then(|x| x.checked_add(bias))
        .ok_or(DslError::LengthFieldMismatch {
            field: prefix_name.to_string(),
            declared: usize::MAX,
            actual: 0,
        })?;
    if n < 0 {
        return Err(DslError::LengthFieldMismatch {
            field: prefix_name.to_string(),
            declared: 0,
            actual: 0,
        });
    }
    Ok(n as usize)
}

fn whole_range(frame_len: usize, mut f: impl FnMut(usize, usize)) {
    f(0, frame_len);
}

/// Folds possibly-overlapping, non-decreasing byte ranges into merged
/// maximal ranges, calling `f` once per merged range. Field indices in
/// a [`CoverageIr::Fields`] are in wire order, so their ranges arrive
/// non-decreasing and one forward pass suffices (mirroring the sort +
/// merge of the interpretive `covered_ranges`).
fn merge_ranges(ranges: impl Iterator<Item = (usize, usize)>, mut f: impl FnMut(usize, usize)) {
    let mut cur: Option<(usize, usize)> = None;
    for (s, e) in ranges {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                f(cs, ce);
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        f(cs, ce);
    }
}
