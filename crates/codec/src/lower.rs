//! Lowering: [`PacketSpec`] → [`CompiledCodec`].
//!
//! All name resolution happens here, once, through the *same* routines
//! the interpretive walker uses ([`PacketSpec::field_index`],
//! [`PacketSpec::resolve_coverage`]): field names become dense
//! [`FieldIx`]es, enumerated sets are sorted for binary search, and
//! coverages become index lists in wire order. The result is a program
//! the interpreter can execute with zero lookups per frame.

use netdsl_core::packet::{Coverage, FieldKind, Len, PacketSpec};
use netdsl_core::DslError;

use crate::ir::{CompiledCodec, CoverageIr, FieldIx, Op};

/// Compiles `spec` into a flat codec program.
///
/// Any spec produced by [`PacketSpec::builder`] lowers successfully;
/// the error cases guard structural limits of the IR itself.
///
/// # Errors
///
/// [`DslError::BadSpec`] when the spec exceeds the IR's field-count
/// limit (`u16::MAX` fields) — unreachable for realistic headers.
pub fn lower(spec: &PacketSpec) -> Result<CompiledCodec, DslError> {
    let bad = |reason: String| DslError::BadSpec {
        spec: spec.name().to_string(),
        reason,
    };
    if spec.fields().len() > usize::from(FieldIx::MAX) {
        return Err(bad(format!(
            "{} fields exceed the codec IR limit of {}",
            spec.fields().len(),
            FieldIx::MAX
        )));
    }

    let mut ops = Vec::with_capacity(spec.fields().len());
    let mut enum_sets: Vec<Vec<u64>> = Vec::new();
    let mut coverages: Vec<CoverageIr> = Vec::new();
    let mut deferred: Vec<u16> = Vec::new();
    let mut min_bits = 0usize;

    let intern_coverage = |coverages: &mut Vec<CoverageIr>, c: &Coverage| -> u16 {
        let ir = match c {
            Coverage::Whole => CoverageIr::Whole,
            Coverage::Fields(_) => CoverageIr::Fields(
                spec.resolve_coverage(c)
                    .into_iter()
                    .map(|i| i as FieldIx)
                    .collect(),
            ),
        };
        match coverages.iter().position(|existing| *existing == ir) {
            Some(i) => i as u16,
            None => {
                coverages.push(ir);
                (coverages.len() - 1) as u16
            }
        }
    };

    for (i, f) in spec.fields().iter().enumerate() {
        let field = i as FieldIx;
        let op = match &f.kind {
            FieldKind::Uint { bits } => Op::Uint {
                field,
                bits: *bits as u8,
            },
            FieldKind::Const { bits, value } => Op::Const {
                field,
                bits: *bits as u8,
                value: *value,
            },
            FieldKind::Enum { bits, allowed } => {
                let mut set = allowed.clone();
                set.sort_unstable();
                set.dedup();
                let set_ix = match enum_sets.iter().position(|s| *s == set) {
                    Some(ix) => ix as u16,
                    None => {
                        enum_sets.push(set);
                        (enum_sets.len() - 1) as u16
                    }
                };
                Op::Enum {
                    field,
                    bits: *bits as u8,
                    set: set_ix,
                }
            }
            FieldKind::Length {
                bits,
                coverage,
                unit,
                bias,
            } => {
                deferred.push(ops.len() as u16);
                Op::Length {
                    field,
                    bits: *bits as u8,
                    cov: intern_coverage(&mut coverages, coverage),
                    unit: *unit,
                    bias: *bias,
                }
            }
            FieldKind::Checksum { kind, coverage } => {
                deferred.push(ops.len() as u16);
                Op::Checksum {
                    field,
                    kind: *kind,
                    cov: intern_coverage(&mut coverages, coverage),
                }
            }
            FieldKind::Bytes { len } => match len {
                Len::Fixed(n) => Op::BytesFixed {
                    field,
                    len: *n as u32,
                },
                Len::Prefixed {
                    field: prefix_name,
                    unit,
                    bias,
                } => {
                    let prefix_ix = spec.field_index(prefix_name).ok_or_else(|| {
                        bad(format!(
                            "`{}` length prefix `{prefix_name}` does not resolve",
                            f.name
                        ))
                    })?;
                    let prefix_is_computed =
                        matches!(spec.fields()[prefix_ix].kind, FieldKind::Length { .. });
                    Op::BytesPrefixed {
                        field,
                        prefix: prefix_ix as FieldIx,
                        unit: *unit,
                        bias: *bias,
                        prefix_is_computed,
                    }
                }
                Len::Rest => Op::BytesRest { field },
            },
        };
        min_bits += op.fixed_bits().unwrap_or(0);
        ops.push(op);
    }

    Ok(CompiledCodec {
        name: spec.name().to_string(),
        field_names: spec.fields().iter().map(|f| f.name.clone()).collect(),
        ops,
        enum_sets,
        coverages,
        deferred,
        min_frame_len: min_bits.div_ceil(8),
        spec: spec.clone(),
    })
}
