//! Crate-level smoke test: the checker proves the paper's sender spec.

use netdsl_core::fsm::paper_sender_spec;
use netdsl_verify::props::check_spec;
use netdsl_verify::{transition_cover, Limits, Verdict};

#[test]
fn paper_sender_verifies_and_is_coverable() {
    let spec = paper_sender_spec(7);
    let report = check_spec(&spec, Limits::default());
    assert!(matches!(report.soundness, Verdict::Holds));
    assert!(matches!(report.completeness, Verdict::Holds));
    assert!(report.all_hold(), "all four verdicts hold");

    let suite = transition_cover(&spec);
    assert!(!suite.is_empty(), "behavioural tests generated");
}
