//! Generic explicit-state exploration.
//!
//! [`System`] is the minimal interface of a labelled transition system.
//! Anything implementing it — a single reified machine, a sender × channel
//! × receiver product, a typestate protocol driven symbolically — can be
//! exhaustively explored, checked against invariants, and queried for
//! reachability, with counter-example traces extracted on failure.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

use netdsl_core::fsm::{Config, EventId, Machine, Spec};
use netdsl_core::fsm_compiled::{CompiledFsm, Stepper};

/// A labelled transition system.
pub trait System {
    /// A global state (must be finitely enumerable for exhaustive runs).
    type State: Clone + Eq + Hash + Ord;
    /// A transition label (for counter-example readability).
    type Label: Clone + fmt::Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// All `(label, successor)` pairs from `s`.
    fn successors(&self, s: &Self::State) -> Vec<(Self::Label, Self::State)>;

    /// `true` for states that are legitimate end points (deadlock in a
    /// terminal state is success, not failure).
    fn is_terminal(&self, _s: &Self::State) -> bool {
        false
    }
}

/// Exploration bounds, so state-space blow-ups fail loudly.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 1_000_000,
        }
    }
}

/// Result of an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct ExplorationReport<S> {
    /// Number of distinct states visited.
    pub states: usize,
    /// Number of transitions traversed.
    pub transitions: usize,
    /// Non-terminal states with no successors.
    pub deadlocks: Vec<S>,
    /// `true` if `max_states` stopped the run early (results are then
    /// lower bounds, not verdicts).
    pub truncated: bool,
}

/// A path from the initial state to a property violation.
#[derive(Debug, Clone)]
pub struct CounterExample<S, L> {
    /// `(label, state)` steps from the initial state; the last state is
    /// the violating one.
    pub path: Vec<(L, S)>,
    /// The violating state (equal to the last path entry's state, or the
    /// initial state if the path is empty).
    pub state: S,
}

/// The explicit-state model checker.
#[derive(Debug, Clone, Copy, Default)]
pub struct Explorer {
    limits: Limits,
}

/// Upper bound on the pre-sized capacity of exploration sets: the
/// `max_states` bound is a safety limit (default one million) while
/// typical runs visit far fewer states, so the hint is clamped rather
/// than allocating the worst case up front.
const PRESIZE_CAP: usize = 4096;

impl Explorer {
    /// An explorer with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// An explorer with custom limits.
    pub fn with_limits(limits: Limits) -> Self {
        Explorer { limits }
    }

    /// Seeds a breadth-first exploration: visited set and frontier
    /// queue pre-sized from the `max_states` hint, with `init` already
    /// visited and enqueued — the shared preamble of every exploration
    /// entry point below.
    fn bfs_seed<S: Clone + Eq + Hash>(&self, init: S) -> (HashSet<S>, VecDeque<S>) {
        let hint = self.limits.max_states.min(PRESIZE_CAP);
        let mut seen = HashSet::with_capacity(hint);
        let mut frontier = VecDeque::with_capacity(hint / 4);
        seen.insert(init.clone());
        frontier.push_back(init);
        (seen, frontier)
    }

    /// Breadth-first exhaustive exploration.
    pub fn explore<Y: System>(&self, sys: &Y) -> ExplorationReport<Y::State> {
        let (mut seen, mut queue) = self.bfs_seed(sys.initial());
        let mut transitions = 0usize;
        let mut deadlocks = Vec::new();
        let mut truncated = false;
        while let Some(s) = queue.pop_front() {
            let succs = sys.successors(&s);
            if succs.is_empty() && !sys.is_terminal(&s) {
                deadlocks.push(s.clone());
            }
            for (_, next) in succs {
                transitions += 1;
                if !seen.contains(&next) {
                    if seen.len() >= self.limits.max_states {
                        truncated = true;
                        continue;
                    }
                    seen.insert(next.clone());
                    queue.push_back(next);
                }
            }
        }
        ExplorationReport {
            states: seen.len(),
            transitions,
            deadlocks,
            truncated,
        }
    }

    /// Checks a state invariant; returns a shortest counter-example trace
    /// if some reachable state violates it.
    pub fn check_invariant<Y: System>(
        &self,
        sys: &Y,
        invariant: impl Fn(&Y::State) -> bool,
    ) -> Option<CounterExample<Y::State, Y::Label>> {
        let init = sys.initial();
        if !invariant(&init) {
            return Some(CounterExample {
                path: Vec::new(),
                state: init,
            });
        }
        let mut parents: BTreeMap<Y::State, (Y::State, Y::Label)> = BTreeMap::new();
        let (mut seen, mut queue) = self.bfs_seed(init.clone());
        while let Some(s) = queue.pop_front() {
            for (label, next) in sys.successors(&s) {
                if seen.contains(&next) {
                    continue;
                }
                if seen.len() >= self.limits.max_states {
                    return None; // bounded: no violation found within limits
                }
                parents.insert(next.clone(), (s.clone(), label.clone()));
                if !invariant(&next) {
                    // Rebuild the path init → next.
                    let mut path = Vec::new();
                    let mut cur = next.clone();
                    while cur != init {
                        let (p, l) = parents.get(&cur).expect("parent recorded").clone();
                        path.push((l, cur.clone()));
                        cur = p;
                    }
                    path.reverse();
                    return Some(CounterExample { path, state: next });
                }
                seen.insert(next.clone());
                queue.push_back(next);
            }
        }
        None
    }

    /// `true` if from **every** reachable state some terminal state is
    /// reachable — the paper's consistent-termination property (§3.4
    /// item 4) generalised. Returns `None` if exploration truncated.
    pub fn always_eventually_terminal<Y: System>(&self, sys: &Y) -> Option<bool> {
        // Forward pass: collect reachable states and edges.
        let mut edges: BTreeMap<Y::State, Vec<Y::State>> = BTreeMap::new();
        let (mut seen, mut queue) = self.bfs_seed(sys.initial());
        let mut terminals = Vec::new();
        while let Some(s) = queue.pop_front() {
            if sys.is_terminal(&s) {
                terminals.push(s.clone());
            }
            let succs = sys.successors(&s);
            let entry = edges.entry(s.clone()).or_default();
            for (_, next) in succs {
                entry.push(next.clone());
                if !seen.contains(&next) {
                    if seen.len() >= self.limits.max_states {
                        return None;
                    }
                    seen.insert(next.clone());
                    queue.push_back(next);
                }
            }
        }
        if terminals.is_empty() {
            return Some(false);
        }
        // Backward pass over reversed edges from all terminals.
        let mut rev: BTreeMap<Y::State, Vec<Y::State>> = BTreeMap::new();
        for (from, tos) in &edges {
            for to in tos {
                rev.entry(to.clone()).or_default().push(from.clone());
            }
        }
        let mut can_reach = HashSet::with_capacity(seen.len());
        let mut queue: VecDeque<Y::State> = terminals.into_iter().collect();
        for t in &queue {
            can_reach.insert(t.clone());
        }
        while let Some(s) = queue.pop_front() {
            if let Some(preds) = rev.get(&s) {
                for p in preds {
                    if can_reach.insert(p.clone()) {
                        queue.push_back(p.clone());
                    }
                }
            }
        }
        Some(seen.iter().all(|s| can_reach.contains(s)))
    }
}

/// Adapts a single reified [`Spec`] as a [`System`]: states are machine
/// [`Config`]s, labels are event ids, successors are the enabled
/// transitions of **the interpreter itself** (uses
/// [`Machine::enabled`] / [`Machine::apply`], so the checked semantics is
/// executable semantics, by construction).
#[derive(Debug, Clone, Copy)]
pub struct SpecSystem<'s> {
    spec: &'s Spec,
}

impl<'s> SpecSystem<'s> {
    /// Wraps a spec.
    pub fn new(spec: &'s Spec) -> Self {
        SpecSystem { spec }
    }

    /// The wrapped spec.
    pub fn spec(&self) -> &'s Spec {
        self.spec
    }
}

impl System for SpecSystem<'_> {
    type State = Config;
    type Label = EventId;

    fn initial(&self) -> Config {
        Machine::new(self.spec).config().clone()
    }

    fn successors(&self, s: &Config) -> Vec<(EventId, Config)> {
        let mut out = Vec::new();
        for e in 0..self.spec.events().len() {
            let event = EventId(e);
            let mut m = Machine::at(self.spec, s.clone()).expect("reachable configs are valid");
            if m.apply(event).is_ok() {
                out.push((event, m.config().clone()));
            }
        }
        out
    }

    fn is_terminal(&self, s: &Config) -> bool {
        self.spec.states()[s.state.0].terminal
    }
}

/// Adapts a [`CompiledFsm`] as a [`System`]: the dense-table successor
/// function. Behaviourally identical to [`SpecSystem`] over the same
/// spec (same states, transitions, deadlocks — pinned by the
/// equivalence tests), but each successor query is one row probe of the
/// compiled table instead of a fresh [`Machine`] plus boxed-`Expr`
/// re-evaluation per event, which is what makes exhaustive exploration
/// of large variable domains cheap (experiment E14).
///
/// The internal [`Stepper`] is reused across queries through a
/// [`RefCell`] — exploration is single-threaded per explorer, and
/// [`System::successors`] takes `&self`.
#[derive(Debug)]
pub struct CompiledSpecSystem<'c> {
    fsm: &'c CompiledFsm,
    stepper: RefCell<Stepper<'c>>,
}

impl<'c> CompiledSpecSystem<'c> {
    /// Wraps a compiled artifact.
    pub fn new(fsm: &'c CompiledFsm) -> Self {
        CompiledSpecSystem {
            fsm,
            stepper: RefCell::new(Stepper::new(fsm)),
        }
    }

    /// The wrapped artifact.
    pub fn fsm(&self) -> &'c CompiledFsm {
        self.fsm
    }
}

impl System for CompiledSpecSystem<'_> {
    type State = Config;
    type Label = EventId;

    fn initial(&self) -> Config {
        self.fsm.initial_config()
    }

    fn successors(&self, s: &Config) -> Vec<(EventId, Config)> {
        let mut stepper = self.stepper.borrow_mut();
        stepper.set_config(s).expect("reachable configs are valid");
        let mut out = Vec::new();
        stepper.successors_into(&mut out);
        out
    }

    fn is_terminal(&self, s: &Config) -> bool {
        self.fsm.state_is_terminal(s.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdsl_core::fsm::paper_sender_spec;

    /// A tiny hand-rolled system: counter 0..n with +1 edges, terminal at n.
    struct Counter {
        n: u32,
    }

    impl System for Counter {
        type State = u32;
        type Label = &'static str;

        fn initial(&self) -> u32 {
            0
        }

        fn successors(&self, s: &u32) -> Vec<(&'static str, u32)> {
            if *s < self.n {
                vec![("inc", s + 1)]
            } else {
                vec![]
            }
        }

        fn is_terminal(&self, s: &u32) -> bool {
            *s == self.n
        }
    }

    #[test]
    fn explore_counts_states_and_transitions() {
        let r = Explorer::new().explore(&Counter { n: 10 });
        assert_eq!(r.states, 11);
        assert_eq!(r.transitions, 10);
        assert!(r.deadlocks.is_empty(), "terminal end is not a deadlock");
        assert!(!r.truncated);
    }

    #[test]
    fn deadlock_detected_when_not_terminal() {
        struct Dead;
        impl System for Dead {
            type State = u8;
            type Label = ();
            fn initial(&self) -> u8 {
                0
            }
            fn successors(&self, s: &u8) -> Vec<((), u8)> {
                if *s == 0 {
                    vec![((), 1)]
                } else {
                    vec![]
                }
            }
        }
        let r = Explorer::new().explore(&Dead);
        assert_eq!(r.deadlocks, vec![1]);
    }

    #[test]
    fn truncation_reported() {
        let r = Explorer::with_limits(Limits { max_states: 5 }).explore(&Counter { n: 100 });
        assert!(r.truncated);
        assert_eq!(r.states, 5);
    }

    #[test]
    fn invariant_violation_yields_shortest_trace() {
        let cex = Explorer::new()
            .check_invariant(&Counter { n: 10 }, |s| *s < 7)
            .expect("7 is reachable");
        assert_eq!(cex.state, 7);
        assert_eq!(cex.path.len(), 7, "shortest path has 7 steps");
        assert!(Explorer::new()
            .check_invariant(&Counter { n: 10 }, |s| *s <= 10)
            .is_none());
    }

    #[test]
    fn initial_state_can_violate() {
        let cex = Explorer::new()
            .check_invariant(&Counter { n: 3 }, |s| *s != 0)
            .unwrap();
        assert!(cex.path.is_empty());
        assert_eq!(cex.state, 0);
    }

    #[test]
    fn termination_reachability() {
        assert_eq!(
            Explorer::new().always_eventually_terminal(&Counter { n: 4 }),
            Some(true)
        );
        // A system with an inescapable non-terminal loop fails.
        struct Trap;
        impl System for Trap {
            type State = u8;
            type Label = ();
            fn initial(&self) -> u8 {
                0
            }
            fn successors(&self, s: &u8) -> Vec<((), u8)> {
                match s {
                    0 => vec![((), 1), ((), 2)],
                    1 => vec![],        // terminal
                    _ => vec![((), 2)], // 2 loops forever
                }
            }
            fn is_terminal(&self, s: &u8) -> bool {
                *s == 1
            }
        }
        assert_eq!(
            Explorer::new().always_eventually_terminal(&Trap),
            Some(false)
        );
    }

    #[test]
    fn spec_system_explores_paper_sender() {
        // seq ∈ 0..=3 → 4 control states × 4 valuations, all reachable
        // except where control restricts: Ready/Wait/Timeout/Sent each
        // with 4 seq values = 16 configurations.
        let spec = paper_sender_spec(3);
        let sys = SpecSystem::new(&spec);
        let r = Explorer::new().explore(&sys);
        assert_eq!(r.states, 16);
        assert!(
            r.deadlocks.is_empty(),
            "Sent is terminal; everything else moves"
        );
        assert_eq!(
            Explorer::new().always_eventually_terminal(&sys),
            Some(true),
            "the sender can always finish"
        );
    }

    #[test]
    fn spec_system_invariant_seq_in_domain() {
        let spec = paper_sender_spec(3);
        let sys = SpecSystem::new(&spec);
        assert!(
            Explorer::new()
                .check_invariant(&sys, |c| c.vars[0] <= 3)
                .is_none(),
            "domain wrapping keeps seq within bounds"
        );
    }

    #[test]
    fn dense_table_exploration_equals_enum_dispatch() {
        // The checker-equivalence contract: exploring through the
        // compiled table must produce the identical report as exploring
        // through Machine::apply per event.
        let spec = paper_sender_spec(7);
        let fsm = netdsl_core::fsm_compiled::lower(&spec).unwrap();
        let walker = SpecSystem::new(&spec);
        let dense = CompiledSpecSystem::new(&fsm);
        let rw = Explorer::new().explore(&walker);
        let rd = Explorer::new().explore(&dense);
        assert_eq!(rw.states, rd.states);
        assert_eq!(rw.transitions, rd.transitions);
        assert_eq!(rw.deadlocks, rd.deadlocks);
        assert_eq!(rw.truncated, rd.truncated);
        assert_eq!(
            Explorer::new().always_eventually_terminal(&walker),
            Explorer::new().always_eventually_terminal(&dense),
        );
    }

    #[test]
    fn dense_table_invariant_counterexamples_agree() {
        let spec = paper_sender_spec(3);
        let fsm = netdsl_core::fsm_compiled::lower(&spec).unwrap();
        let dense = CompiledSpecSystem::new(&fsm);
        assert!(Explorer::new()
            .check_invariant(&dense, |c| c.vars[0] <= 3)
            .is_none());
        // A violated invariant yields the same shortest counter-example
        // depth from both successor functions (BFS order may differ in
        // label, not in length).
        let walker = SpecSystem::new(&spec);
        let cw = Explorer::new()
            .check_invariant(&walker, |c| c.vars[0] < 2)
            .expect("seq reaches 2");
        let cd = Explorer::new()
            .check_invariant(&dense, |c| c.vars[0] < 2)
            .expect("seq reaches 2");
        assert_eq!(cw.path.len(), cd.path.len());
        assert_eq!(cw.state, cd.state);
    }
}
