//! # netdsl-verify — model checking and test generation for netdsl
//!
//! The paper (§3.3) criticises conventional protocol verification for
//! checking a *model* that is separate from the implementation: "there may
//! be errors in transcription between the model and the implementation".
//! Because netdsl state machines are **reified values**
//! ([`netdsl_core::fsm::Spec`]) executed directly by the interpreter, this
//! crate checks *the same object that runs* — no transcription step exists.
//!
//! Three layers:
//!
//! * [`checker`] — a generic explicit-state explorer over any [`System`]
//!   (a labelled transition system); used both for single machines and for
//!   protocol compositions (sender × channel × receiver);
//! * [`props`] — the paper's properties as checkable verdicts over a
//!   `Spec`: **soundness** (the interpreter refuses exactly the disabled
//!   events), **completeness/deadlock-freedom** (every reachable
//!   non-terminal configuration handles at least one event),
//!   **determinism**, and **consistent termination** (§3.4 item 4);
//! * [`testgen`] — automatic construction of behavioural test cases from
//!   the definition (§2.3), with transition-coverage guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod props;
pub mod testgen;

pub use checker::{
    CompiledSpecSystem, CounterExample, ExplorationReport, Explorer, Limits, SpecSystem, System,
};
pub use props::{SpecReport, Verdict};
pub use testgen::{coverage_of, random_suite, transition_cover, TestCase};
