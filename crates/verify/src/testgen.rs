//! Automatic construction of behavioural test cases (§2.3).
//!
//! The paper argues the DSL "potentially allows automatic construction of
//! (at least some) behavioural test cases". Here it does: from a reified
//! spec, [`transition_cover`] derives a minimal-ish suite of event
//! sequences that exercises **every transition** of the machine, each with
//! its expected state trajectory. [`random_suite`] is the baseline random
//! tester the coverage experiment (E10) compares against.

use std::collections::{BTreeSet, HashMap, VecDeque};

use rand::Rng;

use netdsl_core::exec::Driver;
use netdsl_core::fsm::{Config, EventId, Machine, Spec};

use crate::checker::{SpecSystem, System};

/// One generated behavioural test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCase {
    /// Event names to dispatch, in order.
    pub events: Vec<String>,
    /// Expected state names after each event (same length as `events`).
    pub expected_states: Vec<String>,
}

impl TestCase {
    /// Executes the case against a fresh [`Driver`], checking each
    /// expected state. Returns the failing step index on mismatch.
    ///
    /// # Errors
    ///
    /// `Err(step)` at the first divergence or dispatch failure.
    pub fn run(&self, spec: &Spec) -> Result<(), usize> {
        let mut d = Driver::new(spec);
        for (i, (event, expect)) in self.events.iter().zip(&self.expected_states).enumerate() {
            match d.dispatch(event) {
                Ok(state) if spec.state_name(state) == expect => {}
                _ => return Err(i),
            }
        }
        Ok(())
    }

    /// The set of `(from-state, event, to-state)` transition signatures
    /// this case exercises when run from the initial configuration.
    fn covered(&self, spec: &Spec) -> BTreeSet<(String, String, String)> {
        let mut d = Driver::new(spec);
        let mut out = BTreeSet::new();
        for e in &self.events {
            let before = spec.state_name(d.machine().state()).to_string();
            if d.dispatch(e).is_ok() {
                let after = spec.state_name(d.machine().state()).to_string();
                out.insert((before, e.clone(), after));
            }
        }
        out
    }
}

/// All `(from, event, to)` signatures that are *reachably exercisable* in
/// `spec` (a transition unreachable from the initial configuration cannot
/// be covered by any test).
fn reachable_signatures(spec: &Spec) -> BTreeSet<(String, String, String)> {
    let sys = SpecSystem::new(spec);
    let mut seen = BTreeSet::new();
    let mut sigs = BTreeSet::new();
    let mut queue = VecDeque::new();
    let init = sys.initial();
    seen.insert(init.clone());
    queue.push_back(init);
    while let Some(c) = queue.pop_front() {
        for (event, next) in sys.successors(&c) {
            sigs.insert((
                spec.state_name(c.state).to_string(),
                spec.event_name(event).to_string(),
                spec.state_name(next.state).to_string(),
            ));
            if seen.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    sigs
}

/// Generates a suite covering every reachable transition signature.
///
/// Strategy: repeatedly BFS from the initial configuration to the nearest
/// uncovered signature, emitting the shortest event path that ends by
/// exercising it; mark everything the path covers; repeat until no
/// uncovered signature remains.
pub fn transition_cover(spec: &Spec) -> Vec<TestCase> {
    let target = reachable_signatures(spec);
    let mut covered: BTreeSet<(String, String, String)> = BTreeSet::new();
    let mut suite = Vec::new();

    while covered.len() < target.len() {
        let Some(case) = shortest_path_to_uncovered(spec, &target, &covered) else {
            break; // defensive: target derived from same reachability
        };
        for sig in case.covered(spec) {
            covered.insert(sig);
        }
        suite.push(case);
    }
    suite
}

/// BFS over configurations for the shortest event path whose final step
/// exercises an uncovered signature.
fn shortest_path_to_uncovered(
    spec: &Spec,
    target: &BTreeSet<(String, String, String)>,
    covered: &BTreeSet<(String, String, String)>,
) -> Option<TestCase> {
    let sys = SpecSystem::new(spec);
    let init = sys.initial();
    let mut parents: HashMap<Config, (Config, EventId)> = HashMap::new();
    let mut seen = std::collections::HashSet::new();
    seen.insert(init.clone());
    let mut queue = VecDeque::from([init.clone()]);
    while let Some(c) = queue.pop_front() {
        for (event, next) in sys.successors(&c) {
            let sig = (
                spec.state_name(c.state).to_string(),
                spec.event_name(event).to_string(),
                spec.state_name(next.state).to_string(),
            );
            let fresh_sig = target.contains(&sig) && !covered.contains(&sig);
            let fresh_state = !seen.contains(&next);
            if fresh_state {
                parents.insert(next.clone(), (c.clone(), event));
                seen.insert(next.clone());
                queue.push_back(next.clone());
            }
            if fresh_sig {
                // Reconstruct path init → c, then append this step.
                let mut rev: Vec<(Config, EventId)> = Vec::new();
                let mut cur = c.clone();
                while cur != init {
                    let (p, e) = parents.get(&cur).expect("parent recorded").clone();
                    rev.push((cur.clone(), e));
                    cur = p;
                }
                rev.reverse();
                let mut events = Vec::new();
                let mut states = Vec::new();
                for (conf, e) in &rev {
                    events.push(spec.event_name(*e).to_string());
                    states.push(spec.state_name(conf.state).to_string());
                }
                events.push(spec.event_name(event).to_string());
                states.push(spec.state_name(next.state).to_string());
                return Some(TestCase {
                    events,
                    expected_states: states,
                });
            }
        }
    }
    None
}

/// Baseline: `n` random walks of length `len` (events drawn uniformly;
/// invalid events are skipped without advancing — exactly what a naive
/// random tester does).
pub fn random_suite<R: Rng + ?Sized>(
    spec: &Spec,
    rng: &mut R,
    n: usize,
    len: usize,
) -> Vec<TestCase> {
    let mut suite = Vec::with_capacity(n);
    for _ in 0..n {
        let mut m = Machine::new(spec);
        let mut events = Vec::new();
        let mut states = Vec::new();
        for _ in 0..len {
            let e = EventId(rng.random_range(0..spec.events().len()));
            if m.apply(e).is_ok() {
                events.push(spec.event_name(e).to_string());
                states.push(spec.state_name(m.state()).to_string());
            }
        }
        suite.push(TestCase {
            events,
            expected_states: states,
        });
    }
    suite
}

/// Fraction of reachable transition signatures exercised by `suite`
/// (1.0 = full transition coverage).
pub fn coverage_of(spec: &Spec, suite: &[TestCase]) -> f64 {
    let target = reachable_signatures(spec);
    if target.is_empty() {
        return 1.0;
    }
    let mut covered = BTreeSet::new();
    for case in suite {
        for sig in case.covered(spec) {
            covered.insert(sig);
        }
    }
    covered.len() as f64 / target.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdsl_core::fsm::paper_sender_spec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_suite_reaches_full_coverage() {
        let spec = paper_sender_spec(3);
        let suite = transition_cover(&spec);
        assert!(!suite.is_empty());
        let cov = coverage_of(&spec, &suite);
        assert!((cov - 1.0).abs() < 1e-12, "coverage {cov} != 1.0");
    }

    #[test]
    fn generated_cases_pass_when_run() {
        let spec = paper_sender_spec(3);
        for case in transition_cover(&spec) {
            assert_eq!(case.run(&spec), Ok(()), "case {case:?} failed");
        }
    }

    #[test]
    fn cases_detect_divergence() {
        let spec = paper_sender_spec(3);
        let mut case = transition_cover(&spec).into_iter().next().unwrap();
        // Corrupt an expectation.
        case.expected_states[0] = "Sent".to_string();
        assert_eq!(case.run(&spec), Err(0));
    }

    #[test]
    fn random_suite_covers_less_at_small_budget() {
        let spec = paper_sender_spec(3);
        let mut rng = StdRng::seed_from_u64(5);
        let generated = transition_cover(&spec);
        let budget: usize = generated.iter().map(|c| c.events.len()).sum();
        // Random tester with the same event budget in one walk.
        let random = random_suite(&spec, &mut rng, 1, budget);
        let cov_r = coverage_of(&spec, &random);
        let cov_g = coverage_of(&spec, &generated);
        assert!(cov_g >= cov_r, "generated {cov_g} < random {cov_r}");
        assert!((cov_g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_suite_converges_with_large_budget() {
        let spec = paper_sender_spec(1);
        let mut rng = StdRng::seed_from_u64(11);
        let random = random_suite(&spec, &mut rng, 20, 50);
        assert!(coverage_of(&spec, &random) > 0.9);
    }

    #[test]
    fn coverage_of_empty_suite_is_zero() {
        let spec = paper_sender_spec(1);
        assert_eq!(coverage_of(&spec, &[]), 0.0);
    }

    #[test]
    fn suite_covers_retry_and_timeout_paths() {
        let spec = paper_sender_spec(2);
        let suite = transition_cover(&spec);
        let all: BTreeSet<String> = suite.iter().flat_map(|c| c.events.clone()).collect();
        for e in ["SEND", "OK", "FAIL", "TIMEOUT", "RETRY", "FINISH"] {
            assert!(all.contains(e), "event {e} never exercised");
        }
    }
}
