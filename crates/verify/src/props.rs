//! The paper's correctness properties as checkable verdicts.
//!
//! §3.3 claims the DSL lets us "ensure at compile-time both that only
//! valid transitions can be executed (**soundness**), and that all valid
//! transitions are handled (**completeness**)". For the reified embedding
//! these become *checked* (rather than typed) properties, established by
//! exhaustive exploration of the interpreter itself:
//!
//! * **soundness** — for every reachable configuration and every event,
//!   [`Machine::apply`] succeeds *iff* the event has an enabled
//!   transition; rejected events leave the machine untouched;
//! * **determinism** — no configuration enables two transitions for one
//!   event;
//! * **completeness / deadlock-freedom** — every reachable non-terminal
//!   configuration handles at least one event;
//! * **consistent termination** — from every reachable configuration a
//!   terminal state remains reachable (§3.4 item 4).

use netdsl_core::fsm::{Config, EventId, Machine, Spec};

use crate::checker::{Explorer, Limits, SpecSystem, System};

/// Outcome of one property check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Property holds over the whole reachable space.
    Holds,
    /// Property fails; carries a human-readable witness description.
    Fails(String),
    /// Exploration hit its state limit before finishing.
    Unknown,
}

impl Verdict {
    /// `true` only for [`Verdict::Holds`].
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds)
    }
}

/// Full property report for a spec.
#[derive(Debug, Clone)]
pub struct SpecReport {
    /// Name of the spec checked.
    pub spec: String,
    /// Distinct reachable configurations.
    pub states: usize,
    /// Transitions traversed during exploration.
    pub transitions: usize,
    /// Soundness verdict (see module docs).
    pub soundness: Verdict,
    /// Determinism verdict.
    pub determinism: Verdict,
    /// Completeness (deadlock-freedom) verdict.
    pub completeness: Verdict,
    /// Consistent-termination verdict ([`Verdict::Unknown`] when the spec
    /// declares no terminal states — nothing to terminate into).
    pub termination: Verdict,
}

impl SpecReport {
    /// `true` when every applicable property holds.
    pub fn all_hold(&self) -> bool {
        self.soundness.holds()
            && self.determinism.holds()
            && self.completeness.holds()
            && (self.termination.holds() || matches!(self.termination, Verdict::Unknown))
    }
}

/// Enumerates every reachable configuration of `spec` (BFS over the
/// interpreter's own semantics).
pub fn reachable_configs(spec: &Spec, limits: Limits) -> Vec<Config> {
    let sys = SpecSystem::new(spec);
    let mut seen = std::collections::BTreeSet::new();
    let mut queue = std::collections::VecDeque::new();
    let init = sys.initial();
    seen.insert(init.clone());
    queue.push_back(init);
    while let Some(c) = queue.pop_front() {
        for (_, next) in sys.successors(&c) {
            if !seen.contains(&next) && seen.len() < limits.max_states {
                seen.insert(next.clone());
                queue.push_back(next);
            }
        }
    }
    seen.into_iter().collect()
}

/// Runs every property check over `spec`.
pub fn check_spec(spec: &Spec, limits: Limits) -> SpecReport {
    let sys = SpecSystem::new(spec);
    let explorer = Explorer::with_limits(limits);
    let exploration = explorer.explore(&sys);
    let configs = reachable_configs(spec, limits);
    let truncated = exploration.truncated;

    // Soundness + determinism in one sweep over (config, event).
    let mut soundness = Verdict::Holds;
    let mut determinism = Verdict::Holds;
    'outer: for c in &configs {
        for e in 0..spec.events().len() {
            let event = EventId(e);
            let m = Machine::at(spec, c.clone()).expect("reachable configs valid");
            let enabled = match m.enabled(event) {
                Ok(v) => v,
                Err(e) => {
                    soundness = Verdict::Fails(format!("guard evaluation failed: {e}"));
                    break 'outer;
                }
            };
            if enabled.len() > 1 {
                determinism = Verdict::Fails(format!(
                    "config {c} enables {} transitions on `{}`",
                    enabled.len(),
                    spec.event_name(event)
                ));
            }
            // The interpreter must accept iff exactly one is enabled, and
            // must leave the machine untouched on refusal.
            let mut probe = Machine::at(spec, c.clone()).expect("valid");
            let before = probe.config().clone();
            let applied = probe.apply(event);
            match (enabled.len(), applied) {
                (1, Ok(_)) => {}
                (0, Err(_)) => {
                    if probe.config() != &before {
                        soundness = Verdict::Fails(format!(
                            "refused event `{}` mutated config {c}",
                            spec.event_name(event)
                        ));
                        break 'outer;
                    }
                }
                (n, r) => {
                    if n <= 1 {
                        soundness = Verdict::Fails(format!(
                            "interpreter disagreed with enabled-set at {c} on `{}` ({n} enabled, result {r:?})",
                            spec.event_name(event)
                        ));
                        break 'outer;
                    }
                    // n > 1 handled by the determinism verdict.
                }
            }
        }
    }

    // Completeness: no non-terminal deadlocks.
    let completeness = if truncated {
        Verdict::Unknown
    } else if exploration.deadlocks.is_empty() {
        Verdict::Holds
    } else {
        Verdict::Fails(format!(
            "{} reachable non-terminal configuration(s) handle no event, e.g. {}",
            exploration.deadlocks.len(),
            exploration.deadlocks[0]
        ))
    };

    // Consistent termination.
    let has_terminals = spec.states().iter().any(|s| s.terminal);
    let termination = if !has_terminals {
        Verdict::Unknown
    } else {
        match explorer.always_eventually_terminal(&sys) {
            None => Verdict::Unknown,
            Some(true) => Verdict::Holds,
            Some(false) => Verdict::Fails(
                "some reachable configuration cannot reach any terminal state".into(),
            ),
        }
    };

    if truncated {
        soundness = Verdict::Unknown;
        determinism = Verdict::Unknown;
    }

    SpecReport {
        spec: spec.name().to_string(),
        states: exploration.states,
        transitions: exploration.transitions,
        soundness,
        determinism,
        completeness,
        termination,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdsl_core::fsm::{paper_receiver_spec, paper_sender_spec, Expr};

    #[test]
    fn paper_sender_satisfies_all_properties() {
        let spec = paper_sender_spec(7);
        let report = check_spec(&spec, Limits::default());
        assert_eq!(report.states, 32, "4 control states × 8 seq values");
        assert!(report.soundness.holds(), "{:?}", report.soundness);
        assert!(report.determinism.holds(), "{:?}", report.determinism);
        assert!(report.completeness.holds(), "{:?}", report.completeness);
        assert!(report.termination.holds(), "{:?}", report.termination);
        assert!(report.all_hold());
    }

    #[test]
    fn paper_receiver_has_no_terminals_so_termination_unknown() {
        let spec = paper_receiver_spec(7);
        let report = check_spec(&spec, Limits::default());
        assert!(report.soundness.holds());
        assert_eq!(report.termination, Verdict::Unknown);
        assert!(report.all_hold(), "unknown termination is tolerated");
    }

    #[test]
    fn nondeterministic_spec_flagged() {
        // Certain overlap (unguarded duplicates) is rejected at build
        // since the first-match-free determinism contract landed, so the
        // checker's job is the *residual* case: distinct guards that
        // both hold for some valuation (here x <= 5).
        let spec = Spec::builder("nd")
            .state("A")
            .state("B")
            .event("GO")
            .var("x", 9, 0)
            .transition_full(
                "A",
                "GO",
                "B",
                Some(Expr::Le(Box::new(Expr::var("x")), Box::new(Expr::Const(5)))),
                vec![],
            )
            .transition_full(
                "A",
                "GO",
                "A",
                Some(Expr::Le(Box::new(Expr::var("x")), Box::new(Expr::Const(7)))),
                vec![],
            )
            .build()
            .unwrap();
        let report = check_spec(&spec, Limits::default());
        assert!(matches!(report.determinism, Verdict::Fails(_)));
        assert!(!report.all_hold());
    }

    #[test]
    fn deadlocked_spec_flagged_incomplete() {
        let spec = Spec::builder("dead")
            .state("A")
            .state("Stuck")
            .event("GO")
            .transition("A", "GO", "Stuck")
            .build()
            .unwrap();
        let report = check_spec(&spec, Limits::default());
        assert!(matches!(report.completeness, Verdict::Fails(_)));
    }

    #[test]
    fn unreachable_terminal_fails_termination() {
        let spec = Spec::builder("trap")
            .state("A")
            .state("Loop")
            .terminal("Done")
            .event("GO")
            .event("SPIN")
            .transition("A", "GO", "Loop")
            .transition("Loop", "SPIN", "Loop")
            .build()
            .unwrap();
        let report = check_spec(&spec, Limits::default());
        assert!(matches!(report.termination, Verdict::Fails(_)));
    }

    #[test]
    fn guarded_spec_counts_only_reachable_valuations() {
        // x only ever increments to 2 (guard stops there), so although the
        // domain is 0..=10, only 3 valuations are reachable.
        let spec = Spec::builder("g")
            .state("A")
            .event("INC")
            .var("x", 10, 0)
            .transition_full(
                "A",
                "INC",
                "A",
                Some(Expr::Lt(Box::new(Expr::var("x")), Box::new(Expr::Const(2)))),
                vec![(
                    "x".to_string(),
                    Expr::Add(Box::new(Expr::var("x")), Box::new(Expr::Const(1))),
                )],
            )
            .build()
            .unwrap();
        let report = check_spec(&spec, Limits::default());
        assert_eq!(report.states, 3);
        // x = 2 handles no event → completeness fails (deliberate: shows
        // the checker catching an unhandled-but-reachable configuration).
        assert!(matches!(report.completeness, Verdict::Fails(_)));
    }

    #[test]
    fn truncation_degrades_to_unknown() {
        let spec = paper_sender_spec(255);
        let report = check_spec(&spec, Limits { max_states: 10 });
        assert_eq!(report.soundness, Verdict::Unknown);
        assert_eq!(report.completeness, Verdict::Unknown);
    }

    #[test]
    fn reachable_configs_enumerates_exactly() {
        let spec = paper_sender_spec(1);
        let configs = reachable_configs(&spec, Limits::default());
        assert_eq!(configs.len(), 8, "4 control states × 2 seq values");
    }
}
