//! Crate-level smoke test: checksums round-trip and buffers feed cursors.

use netdsl_wire::checksum::{arq_check, arq_verify, crc16_ccitt, internet_checksum};
use netdsl_wire::endian::Endianness;
use netdsl_wire::{ReadCursor, WireBuffer};

#[test]
fn checksum_roundtrip_and_rejection() {
    let data = b"correct-by-construction";
    let carried = arq_check(7, data);
    assert!(arq_verify(7, data, carried));
    assert!(!arq_verify(8, data, carried), "wrong seq must fail");

    // CRC-16/CCITT check value and internet checksum self-inverse.
    assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
    let sum = internet_checksum(data);
    assert_ne!(sum, internet_checksum(b"something else"));
}

#[test]
fn buffer_cursor_roundtrip() {
    let mut buf = WireBuffer::new();
    buf.put_u8(0xAB);
    buf.put_u32(0xDEAD_BEEF, Endianness::Big);
    let bytes = buf.into_vec();
    let mut cur = ReadCursor::new(&bytes);
    assert_eq!(cur.take_u8().unwrap(), 0xAB);
    assert_eq!(cur.take_u32(Endianness::Big).unwrap(), 0xDEAD_BEEF);
    assert!(cur.is_empty());
}
