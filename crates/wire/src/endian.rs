//! Fixed-width integer reads/writes with explicit endianness.
//!
//! Protocol specifications define on-the-wire byte order explicitly; these
//! helpers make the choice visible at every call site instead of hiding it
//! behind host byte order (the classic `htons`/`ntohs` bug family).

use crate::error::WireError;

/// On-the-wire byte order of a multi-byte integer field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Endianness {
    /// Network byte order (most significant byte first). The default, as
    /// for virtually all IETF protocols.
    #[default]
    Big,
    /// Least significant byte first (used by some file formats and legacy
    /// protocols).
    Little,
}

macro_rules! rw_impl {
    ($read:ident, $write:ident, $ty:ty, $n:expr) => {
        /// Reads a fixed-width integer from the front of `buf`.
        ///
        /// # Errors
        ///
        /// [`WireError::UnexpectedEnd`] if `buf` is shorter than the
        /// integer's width.
        pub fn $read(buf: &[u8], endian: Endianness) -> Result<$ty, WireError> {
            if buf.len() < $n {
                return Err(WireError::UnexpectedEnd {
                    requested: $n * 8,
                    available: buf.len() * 8,
                });
            }
            let arr: [u8; $n] = buf[..$n].try_into().expect("length checked");
            Ok(match endian {
                Endianness::Big => <$ty>::from_be_bytes(arr),
                Endianness::Little => <$ty>::from_le_bytes(arr),
            })
        }

        /// Appends a fixed-width integer to `out` in the given byte order.
        pub fn $write(out: &mut Vec<u8>, value: $ty, endian: Endianness) {
            let bytes = match endian {
                Endianness::Big => value.to_be_bytes(),
                Endianness::Little => value.to_le_bytes(),
            };
            out.extend_from_slice(&bytes);
        }
    };
}

rw_impl!(read_u16, write_u16, u16, 2);
rw_impl!(read_u32, write_u32, u32, 4);
rw_impl!(read_u64, write_u64, u64, 8);

/// Reads a single byte from the front of `buf`.
///
/// # Errors
///
/// [`WireError::UnexpectedEnd`] if `buf` is empty.
pub fn read_u8(buf: &[u8]) -> Result<u8, WireError> {
    buf.first().copied().ok_or(WireError::UnexpectedEnd {
        requested: 8,
        available: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn u16_round_trips_both_orders() {
        for endian in [Endianness::Big, Endianness::Little] {
            let mut out = Vec::new();
            write_u16(&mut out, 0xABCD, endian);
            assert_eq!(read_u16(&out, endian).unwrap(), 0xABCD);
        }
    }

    #[test]
    fn big_endian_is_network_order() {
        let mut out = Vec::new();
        write_u32(&mut out, 0x0102_0304, Endianness::Big);
        assert_eq!(out, vec![1, 2, 3, 4]);
        out.clear();
        write_u32(&mut out, 0x0102_0304, Endianness::Little);
        assert_eq!(out, vec![4, 3, 2, 1]);
    }

    #[test]
    fn short_buffers_error() {
        assert!(read_u16(&[1], Endianness::Big).is_err());
        assert!(read_u32(&[1, 2, 3], Endianness::Big).is_err());
        assert!(read_u64(&[0; 7], Endianness::Big).is_err());
        assert!(read_u8(&[]).is_err());
    }

    #[test]
    fn default_endianness_is_big() {
        assert_eq!(Endianness::default(), Endianness::Big);
    }

    proptest! {
        #[test]
        fn u64_roundtrip(v in any::<u64>(), le in any::<bool>()) {
            let endian = if le { Endianness::Little } else { Endianness::Big };
            let mut out = Vec::new();
            write_u64(&mut out, v, endian);
            prop_assert_eq!(read_u64(&out, endian).unwrap(), v);
        }

        #[test]
        fn reads_ignore_trailing_bytes(v in any::<u32>(), trail in proptest::collection::vec(any::<u8>(), 0..8)) {
            let mut out = Vec::new();
            write_u32(&mut out, v, Endianness::Big);
            out.extend_from_slice(&trail);
            prop_assert_eq!(read_u32(&out, Endianness::Big).unwrap(), v);
        }
    }
}
