//! # netdsl-wire — bit-granular wire-format substrate
//!
//! Network protocol headers are specified down to the bit (see e.g. the
//! IPv4 header of RFC 791, reproduced as Figure 1 of the paper this
//! workspace reproduces). This crate provides the low-level machinery that
//! every packet codec in the workspace sits on:
//!
//! * [`BitReader`] / [`BitWriter`] — MSB-first (network order) bit streams;
//! * [`endian`] — fixed-width integer reads/writes in big/little endian;
//! * [`checksum`] — the checksum/CRC suite used by protocol definitions;
//! * [`buffer`] — a growable byte buffer with a reading cursor;
//! * [`hexdump`] — human-readable views of raw frames.
//!
//! # Examples
//!
//! ```
//! use netdsl_wire::{BitWriter, BitReader};
//!
//! # fn main() -> Result<(), netdsl_wire::WireError> {
//! let mut w = BitWriter::new();
//! w.write_bits(0x4, 4)?;            // IPv4 version
//! w.write_bits(5, 4)?;              // IHL
//! w.write_bits(0, 8)?;              // TOS
//! w.write_bits(20, 16)?;            // total length
//! let bytes = w.into_bytes();
//! assert_eq!(bytes, vec![0x45, 0x00, 0x00, 0x14]);
//!
//! let mut r = BitReader::new(&bytes);
//! assert_eq!(r.read_bits(4)?, 0x4);
//! assert_eq!(r.read_bits(4)?, 5);
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod buffer;
pub mod checksum;
pub mod endian;
pub mod error;
pub mod hexdump;

pub use bits::{BitReader, BitWriter};
pub use buffer::{ReadCursor, WireBuffer};
pub use error::WireError;
