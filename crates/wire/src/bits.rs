//! MSB-first bit-stream reader and writer.
//!
//! Network headers are defined in *network bit order*: the first bit on the
//! wire is the most significant bit of the first byte. [`BitReader`] and
//! [`BitWriter`] implement exactly that convention, which is what the ASCII
//! packet pictures of RFCs (and Figure 1 of the paper) denote.

use crate::error::WireError;

/// Reads unsigned integers of arbitrary width (1..=64 bits) from a byte
/// slice, MSB first.
///
/// # Examples
///
/// ```
/// use netdsl_wire::BitReader;
/// # fn main() -> Result<(), netdsl_wire::WireError> {
/// let mut r = BitReader::new(&[0b1010_0001, 0xFF]);
/// assert_eq!(r.read_bits(3)?, 0b101);
/// assert_eq!(r.read_bits(5)?, 0b0_0001);
/// assert_eq!(r.read_bits(8)?, 0xFF);
/// assert!(r.is_empty());
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Absolute bit position from the start of `data`.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`, positioned at the first bit.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    /// Total number of bits in the underlying slice.
    pub fn total_bits(&self) -> usize {
        self.data.len() * 8
    }

    /// Number of bits not yet consumed.
    pub fn remaining_bits(&self) -> usize {
        self.total_bits() - self.pos
    }

    /// Current absolute bit position.
    pub fn bit_position(&self) -> usize {
        self.pos
    }

    /// `true` when every bit has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining_bits() == 0
    }

    /// `true` when the read position lies on a byte boundary.
    pub fn is_byte_aligned(&self) -> bool {
        self.pos.is_multiple_of(8)
    }

    /// Reads `width` bits (1..=64) as an unsigned big-endian integer.
    ///
    /// # Errors
    ///
    /// * [`WireError::WidthTooLarge`] if `width > 64` or `width == 0`;
    /// * [`WireError::UnexpectedEnd`] if fewer than `width` bits remain.
    pub fn read_bits(&mut self, width: usize) -> Result<u64, WireError> {
        if width == 0 || width > 64 {
            return Err(WireError::WidthTooLarge { width });
        }
        if self.remaining_bits() < width {
            return Err(WireError::UnexpectedEnd {
                requested: width,
                available: self.remaining_bits(),
            });
        }
        let mut out: u64 = 0;
        let mut taken = 0;
        while taken < width {
            let byte_idx = self.pos / 8;
            let bit_idx = self.pos % 8;
            let avail_in_byte = 8 - bit_idx;
            let take = avail_in_byte.min(width - taken);
            let byte = self.data[byte_idx];
            // Extract `take` bits starting at `bit_idx` (from the MSB side).
            let shifted = byte >> (avail_in_byte - take);
            let mask = if take == 8 { 0xFF } else { (1u8 << take) - 1 };
            out = (out << take) | u64::from(shifted & mask);
            self.pos += take;
            taken += take;
        }
        Ok(out)
    }

    /// Reads a single bit as a boolean flag.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] if the input is exhausted.
    pub fn read_flag(&mut self) -> Result<bool, WireError> {
        Ok(self.read_bits(1)? == 1)
    }

    /// Reads `n` whole bytes; requires byte alignment.
    ///
    /// # Errors
    ///
    /// * [`WireError::NotByteAligned`] if the position is mid-byte;
    /// * [`WireError::UnexpectedEnd`] if fewer than `n` bytes remain.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if !self.is_byte_aligned() {
            return Err(WireError::NotByteAligned {
                bit_offset: self.pos % 8,
            });
        }
        let start = self.pos / 8;
        if start + n > self.data.len() {
            return Err(WireError::UnexpectedEnd {
                requested: n * 8,
                available: self.remaining_bits(),
            });
        }
        self.pos += n * 8;
        Ok(&self.data[start..start + n])
    }

    /// Skips `width` bits without interpreting them.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] if fewer than `width` bits remain.
    pub fn skip_bits(&mut self, width: usize) -> Result<(), WireError> {
        if self.remaining_bits() < width {
            return Err(WireError::UnexpectedEnd {
                requested: width,
                available: self.remaining_bits(),
            });
        }
        self.pos += width;
        Ok(())
    }

    /// Returns the rest of the input as a byte slice; requires alignment.
    ///
    /// # Errors
    ///
    /// [`WireError::NotByteAligned`] if the position is mid-byte.
    pub fn rest(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.remaining_bits() / 8;
        self.read_bytes(n)
    }
}

/// Writes unsigned integers of arbitrary width (1..=64 bits) MSB first,
/// accumulating into an owned byte vector.
///
/// The writer keeps a partial byte internally; [`BitWriter::into_bytes`]
/// pads the final byte with zero bits, matching the convention that header
/// pictures always describe a whole number of bytes.
///
/// # Examples
///
/// ```
/// use netdsl_wire::BitWriter;
/// # fn main() -> Result<(), netdsl_wire::WireError> {
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3)?;
/// w.write_bits(0b00001, 5)?;
/// assert_eq!(w.into_bytes(), vec![0b1010_0001]);
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the trailing partial byte (0..8). When 0 the
    /// last byte of `bytes` is complete.
    partial_bits: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with capacity for `bytes` whole bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            bytes: Vec::with_capacity(bytes),
            partial_bits: 0,
        }
    }

    /// Creates a writer that reuses `buf`'s allocation, clearing any
    /// contents first. Pairs with [`BitWriter::into_bytes`] so repeated
    /// encoders (the compiled codec's `encode_into`) can cycle one
    /// buffer through encode → consume → encode with no reallocation
    /// once the buffer has grown to the working frame size.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        BitWriter {
            bytes: buf,
            partial_bits: 0,
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.partial_bits == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.partial_bits
        }
    }

    /// `true` if the writer currently ends on a byte boundary.
    pub fn is_byte_aligned(&self) -> bool {
        self.partial_bits == 0
    }

    /// Writes the low `width` bits of `value`, MSB first.
    ///
    /// # Errors
    ///
    /// * [`WireError::WidthTooLarge`] if `width > 64` or `width == 0`;
    /// * [`WireError::ValueOverflow`] if `value` needs more than `width` bits.
    pub fn write_bits(&mut self, value: u64, width: usize) -> Result<(), WireError> {
        if width == 0 || width > 64 {
            return Err(WireError::WidthTooLarge { width });
        }
        if width < 64 && value >> width != 0 {
            return Err(WireError::ValueOverflow { value, width });
        }
        let mut left = width;
        while left > 0 {
            if self.partial_bits == 0 {
                self.bytes.push(0);
            }
            let space = 8 - self.partial_bits;
            let take = space.min(left);
            let chunk = ((value >> (left - take)) & ((1u64 << take) - 1)) as u8;
            let last = self.bytes.last_mut().expect("partial byte exists");
            *last |= chunk << (space - take);
            self.partial_bits = (self.partial_bits + take) % 8;
            left -= take;
        }
        Ok(())
    }

    /// Writes a single bit.
    ///
    /// # Errors
    ///
    /// Never fails in practice; returns `Result` for uniformity.
    pub fn write_flag(&mut self, flag: bool) -> Result<(), WireError> {
        self.write_bits(u64::from(flag), 1)
    }

    /// Appends whole bytes; requires byte alignment.
    ///
    /// # Errors
    ///
    /// [`WireError::NotByteAligned`] if the writer ends mid-byte.
    pub fn write_bytes(&mut self, data: &[u8]) -> Result<(), WireError> {
        if !self.is_byte_aligned() {
            return Err(WireError::NotByteAligned {
                bit_offset: self.partial_bits,
            });
        }
        self.bytes.extend_from_slice(data);
        Ok(())
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        self.partial_bits = 0;
    }

    /// Finishes the stream, zero-padding any trailing partial byte.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrows the bytes written so far (including any partial final byte).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn read_across_byte_boundaries() {
        let mut r = BitReader::new(&[0xAB, 0xCD, 0xEF]);
        assert_eq!(r.read_bits(12).unwrap(), 0xABC);
        assert_eq!(r.read_bits(12).unwrap(), 0xDEF);
        assert!(r.is_empty());
    }

    #[test]
    fn read_full_64_bits() {
        let data = 0xDEAD_BEEF_CAFE_F00Du64.to_be_bytes();
        let mut r = BitReader::new(&data);
        assert_eq!(r.read_bits(64).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn read_too_many_bits_fails() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(
            r.read_bits(9),
            Err(WireError::UnexpectedEnd {
                requested: 9,
                available: 8
            })
        );
    }

    #[test]
    fn zero_and_oversize_width_rejected() {
        let mut r = BitReader::new(&[0xFF; 16]);
        assert_eq!(r.read_bits(0), Err(WireError::WidthTooLarge { width: 0 }));
        assert_eq!(r.read_bits(65), Err(WireError::WidthTooLarge { width: 65 }));
        let mut w = BitWriter::new();
        assert_eq!(
            w.write_bits(0, 0),
            Err(WireError::WidthTooLarge { width: 0 })
        );
        assert_eq!(
            w.write_bits(0, 65),
            Err(WireError::WidthTooLarge { width: 65 })
        );
    }

    #[test]
    fn flags_read_in_order() {
        let mut r = BitReader::new(&[0b1011_0000]);
        assert!(r.read_flag().unwrap());
        assert!(!r.read_flag().unwrap());
        assert!(r.read_flag().unwrap());
        assert!(r.read_flag().unwrap());
    }

    #[test]
    fn byte_read_requires_alignment() {
        let mut r = BitReader::new(&[0xAA, 0xBB]);
        r.read_bits(4).unwrap();
        assert_eq!(
            r.read_bytes(1),
            Err(WireError::NotByteAligned { bit_offset: 4 })
        );
        r.read_bits(4).unwrap();
        assert_eq!(r.read_bytes(1).unwrap(), &[0xBB]);
    }

    #[test]
    fn skip_moves_position() {
        let mut r = BitReader::new(&[0xFF, 0x0F]);
        r.skip_bits(12).unwrap();
        assert_eq!(r.read_bits(4).unwrap(), 0xF);
        assert!(r.skip_bits(1).is_err());
    }

    #[test]
    fn rest_returns_remaining_bytes() {
        let mut r = BitReader::new(&[1, 2, 3, 4]);
        r.read_bytes(1).unwrap();
        assert_eq!(r.rest().unwrap(), &[2, 3, 4]);
        assert!(r.is_empty());
    }

    #[test]
    fn write_overflow_detected() {
        let mut w = BitWriter::new();
        assert_eq!(
            w.write_bits(0x10, 4),
            Err(WireError::ValueOverflow {
                value: 0x10,
                width: 4
            })
        );
    }

    #[test]
    fn writer_pads_final_byte_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2).unwrap();
        assert_eq!(w.into_bytes(), vec![0b1100_0000]);
    }

    #[test]
    fn write_bytes_requires_alignment() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1).unwrap();
        assert_eq!(
            w.write_bytes(&[0xAA]),
            Err(WireError::NotByteAligned { bit_offset: 1 })
        );
        w.align_to_byte();
        w.write_bytes(&[0xAA]).unwrap();
        assert_eq!(w.into_bytes(), vec![0b1000_0000, 0xAA]);
    }

    #[test]
    fn from_vec_reuses_allocation_and_clears() {
        let mut buf = vec![0xAA; 64];
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        buf.truncate(64);
        let mut w = BitWriter::from_vec(buf);
        w.write_bits(0x12, 8).unwrap();
        let out = w.into_bytes();
        assert_eq!(out, vec![0x12], "old contents discarded");
        assert_eq!(out.capacity(), cap, "allocation reused");
        assert_eq!(out.as_ptr(), ptr, "no reallocation");
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 3).unwrap();
        assert_eq!(w.bit_len(), 3);
        w.write_bits(0, 5).unwrap();
        assert_eq!(w.bit_len(), 8);
        assert!(w.is_byte_aligned());
    }

    proptest! {
        /// Writing a sequence of (value, width) fields then reading the
        /// same widths back yields the original values — the fundamental
        /// round-trip law every codec relies on.
        #[test]
        fn roundtrip_bits(fields in proptest::collection::vec((any::<u64>(), 1usize..=64), 1..32)) {
            let mut w = BitWriter::new();
            let mut expected = Vec::new();
            for (v, width) in &fields {
                let masked = if *width == 64 { *v } else { v & ((1u64 << width) - 1) };
                w.write_bits(masked, *width).unwrap();
                expected.push((masked, *width));
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for (v, width) in expected {
                prop_assert_eq!(r.read_bits(width).unwrap(), v);
            }
        }

        /// The writer never produces more bytes than needed.
        #[test]
        fn writer_length_is_minimal(widths in proptest::collection::vec(1usize..=64, 1..32)) {
            let mut w = BitWriter::new();
            let mut total = 0usize;
            for width in widths {
                w.write_bits(0, width).unwrap();
                total += width;
            }
            prop_assert_eq!(w.into_bytes().len(), total.div_ceil(8));
        }

        /// Reading described widths consumes exactly their sum.
        #[test]
        fn reader_position_advances_exactly(widths in proptest::collection::vec(1usize..=16, 1..16)) {
            let total: usize = widths.iter().sum();
            let data = vec![0xA5u8; total.div_ceil(8)];
            let mut r = BitReader::new(&data);
            for w in &widths {
                r.read_bits(*w).unwrap();
            }
            prop_assert_eq!(r.bit_position(), total);
        }
    }
}
