//! Error type shared by all wire-level operations.

use std::error::Error;
use std::fmt;

/// Errors arising from reading or writing wire-format data.
///
/// Every fallible operation in this crate returns `Result<_, WireError>`.
/// The variants are deliberately precise so that packet codecs built on top
/// can report *where* and *why* a frame was malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The input ended before the requested number of bits/bytes could be
    /// read. Carries `(requested, available)` in bits.
    UnexpectedEnd {
        /// Number of bits the caller asked for.
        requested: usize,
        /// Number of bits that remained in the input.
        available: usize,
    },
    /// A bit-level read or write of more than 64 bits was requested.
    WidthTooLarge {
        /// The requested width in bits.
        width: usize,
    },
    /// A value did not fit in the requested field width.
    ValueOverflow {
        /// The value that was being written.
        value: u64,
        /// The field width in bits.
        width: usize,
    },
    /// A length field described more data than the frame actually carries.
    LengthMismatch {
        /// Length the frame claimed.
        declared: usize,
        /// Length actually present.
        actual: usize,
    },
    /// A checksum or CRC did not verify. Carries `(expected, computed)`.
    ChecksumMismatch {
        /// Checksum carried in the frame.
        expected: u64,
        /// Checksum computed over the frame contents.
        computed: u64,
    },
    /// A field held a value outside its allowed set.
    InvalidValue {
        /// Human-readable description of the offending field.
        field: &'static str,
        /// The offending value, widened to `u64`.
        value: u64,
    },
    /// The reader was not positioned on a byte boundary when a byte-aligned
    /// operation was requested.
    NotByteAligned {
        /// Current bit offset within the byte (1..=7).
        bit_offset: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd {
                requested,
                available,
            } => write!(
                f,
                "unexpected end of input: requested {requested} bits, {available} available"
            ),
            WireError::WidthTooLarge { width } => {
                write!(f, "bit width {width} exceeds the 64-bit limit")
            }
            WireError::ValueOverflow { value, width } => {
                write!(f, "value {value:#x} does not fit in {width} bits")
            }
            WireError::LengthMismatch { declared, actual } => write!(
                f,
                "declared length {declared} does not match actual length {actual}"
            ),
            WireError::ChecksumMismatch { expected, computed } => write!(
                f,
                "checksum mismatch: frame carries {expected:#x}, computed {computed:#x}"
            ),
            WireError::InvalidValue { field, value } => {
                write!(f, "invalid value {value:#x} for field `{field}`")
            }
            WireError::NotByteAligned { bit_offset } => {
                write!(
                    f,
                    "operation requires byte alignment, {bit_offset} bits into a byte"
                )
            }
        }
    }
}

impl Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(WireError, &str)> = vec![
            (
                WireError::UnexpectedEnd {
                    requested: 8,
                    available: 3,
                },
                "unexpected end",
            ),
            (WireError::WidthTooLarge { width: 65 }, "exceeds"),
            (
                WireError::ValueOverflow {
                    value: 256,
                    width: 8,
                },
                "does not fit",
            ),
            (
                WireError::LengthMismatch {
                    declared: 20,
                    actual: 10,
                },
                "declared length",
            ),
            (
                WireError::ChecksumMismatch {
                    expected: 1,
                    computed: 2,
                },
                "checksum mismatch",
            ),
            (
                WireError::InvalidValue {
                    field: "version",
                    value: 9,
                },
                "invalid value",
            ),
            (WireError::NotByteAligned { bit_offset: 3 }, "alignment"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "error messages start lowercase: {msg:?}"
            );
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<WireError>();
    }

    #[test]
    fn errors_compare_structurally() {
        assert_eq!(
            WireError::WidthTooLarge { width: 65 },
            WireError::WidthTooLarge { width: 65 }
        );
        assert_ne!(
            WireError::WidthTooLarge { width: 65 },
            WireError::WidthTooLarge { width: 66 }
        );
    }
}
