//! Checksum and CRC algorithms used by protocol definitions.
//!
//! The paper's ARQ example (§3.4) hinges on a `check : Byte → List Byte →
//! Byte` function whose result is embedded in the packet and verified on
//! receipt; [`arq_check`] is that function. The remaining algorithms are the
//! ones real header formats use and that the packet DSL exposes as
//! [`ChecksumKind`] field transforms:
//!
//! * [`internet_checksum`] — RFC 1071 ones'-complement sum (IPv4, UDP, TCP);
//! * [`fletcher16`] / [`fletcher32`] — position-sensitive sums (OSI TP4);
//! * [`adler32`] — zlib's checksum;
//! * [`crc16_ccitt`] / [`crc32_ieee`] — table-driven CRCs (HDLC, Ethernet).

/// Identifies a checksum algorithm in a declarative packet description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ChecksumKind {
    /// The paper's single-byte ARQ checksum ([`arq_check`]).
    Arq,
    /// RFC 1071 16-bit ones'-complement Internet checksum.
    Internet,
    /// Fletcher-16.
    Fletcher16,
    /// Fletcher-32.
    Fletcher32,
    /// Adler-32.
    Adler32,
    /// CRC-16/CCITT (polynomial 0x1021, init 0xFFFF).
    Crc16Ccitt,
    /// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
    Crc32Ieee,
}

impl ChecksumKind {
    /// Width of the checksum value in bits.
    pub fn width_bits(self) -> usize {
        match self {
            ChecksumKind::Arq => 8,
            ChecksumKind::Internet | ChecksumKind::Fletcher16 | ChecksumKind::Crc16Ccitt => 16,
            ChecksumKind::Fletcher32 | ChecksumKind::Adler32 | ChecksumKind::Crc32Ieee => 32,
        }
    }

    /// Computes this checksum over `data`, widened to `u64`.
    pub fn compute(self, data: &[u8]) -> u64 {
        match self {
            ChecksumKind::Arq => u64::from(arq_check(0, data)),
            ChecksumKind::Internet => u64::from(internet_checksum(data)),
            ChecksumKind::Fletcher16 => u64::from(fletcher16(data)),
            ChecksumKind::Fletcher32 => u64::from(fletcher32(data)),
            ChecksumKind::Adler32 => u64::from(adler32(data)),
            ChecksumKind::Crc16Ccitt => u64::from(crc16_ccitt(data)),
            ChecksumKind::Crc32Ieee => u64::from(crc32_ieee(data)),
        }
    }
}

/// Incremental state for any [`ChecksumKind`], fed byte runs in order.
///
/// Produces exactly the value [`ChecksumKind::compute`] yields over the
/// concatenation of everything fed to [`ChecksumEngine::update`] /
/// [`ChecksumEngine::update_zeros`] — including the word-pairing
/// algorithms ([`ChecksumKind::Internet`], [`ChecksumKind::Fletcher32`]),
/// which carry an odd pending byte across run boundaries. This is what
/// lets the compiled codec engine checksum a frame's covered ranges
/// (with the checksum field's own bytes zeroed) without assembling an
/// intermediate buffer.
///
/// ```
/// use netdsl_wire::checksum::{ChecksumEngine, ChecksumKind};
/// let kind = ChecksumKind::Crc32Ieee;
/// let mut e = ChecksumEngine::new(kind);
/// e.update(b"123");
/// e.update(b"456789");
/// assert_eq!(e.finish(), kind.compute(b"123456789"));
/// ```
#[derive(Debug, Clone)]
pub struct ChecksumEngine {
    kind: ChecksumKind,
    /// Accumulators `a`/`b` (meaning depends on the algorithm).
    a: u32,
    b: u32,
    /// High byte of an incomplete 16-bit word, for word-paired sums.
    pending: Option<u8>,
}

thread_local! {
    /// When set, [`ChecksumEngine`] runs its byte-at-a-time reference
    /// implementation instead of the sliced/table-driven fast path.
    static REFERENCE_MODE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Switches this thread's [`ChecksumEngine`]s between the optimised
/// path and the byte-at-a-time reference implementation (the engine as
/// originally written). Returns the previous setting so callers can
/// restore it.
///
/// The two paths produce **identical values** (property-tested); the
/// reference exists as the oracle those tests pin the fast path
/// against, and as the measurement baseline: `SimCore::Legacy`
/// simulations run it so that experiment E13 compares the current
/// frame hot path against the genuine pre-optimisation one.
pub fn set_reference_mode(on: bool) -> bool {
    REFERENCE_MODE.with(|m| m.replace(on))
}

/// `true` while this thread's engines run the reference path.
pub fn reference_mode() -> bool {
    REFERENCE_MODE.with(|m| m.get())
}

impl ChecksumEngine {
    /// Fresh state for `kind` (equivalent to having fed no bytes).
    pub fn new(kind: ChecksumKind) -> Self {
        let (a, b) = match kind {
            ChecksumKind::Adler32 => (1, 0),
            ChecksumKind::Crc16Ccitt => (0xFFFF, 0),
            ChecksumKind::Crc32Ieee => (0xFFFF_FFFF, 0),
            _ => (0, 0),
        };
        ChecksumEngine {
            kind,
            a,
            b,
            pending: None,
        }
    }

    /// Feeds one byte run.
    ///
    /// The dispatch on [`ChecksumKind`] is hoisted out of the byte loop
    /// and the additive algorithms defer their modular reductions to
    /// block boundaries (a standard Fletcher/Adler optimisation that
    /// leaves every result bit-identical — residue arithmetic commutes
    /// with deferred folding); the CRCs run table-driven. Checksumming
    /// is the single largest per-frame cost in a protocol simulation,
    /// so this loop is what campaign throughput (E11/E13) mostly buys.
    pub fn update(&mut self, data: &[u8]) {
        if reference_mode() {
            for &byte in data {
                self.push_reference(byte);
            }
            return;
        }
        match self.kind {
            ChecksumKind::Arq => {
                // Ones'-complement byte sum: accumulate raw in u32 and
                // fold once per block instead of once per byte.
                let mut sum = self.a;
                for block in data.chunks(1 << 16) {
                    sum += block.iter().map(|&b| u32::from(b)).sum::<u32>();
                    while sum > 0xFF {
                        sum = (sum & 0xFF) + (sum >> 8);
                    }
                }
                self.a = sum;
            }
            ChecksumKind::Internet => {
                let mut data = data;
                if let Some(hi) = self.pending.take() {
                    if let [first, rest @ ..] = data {
                        self.a += u32::from(u16::from_be_bytes([hi, *first]));
                        // Fold here as the reference path does: a long
                        // stream of single-byte updates never reaches
                        // the block loop's fold below, and an unfolded
                        // accumulator would eventually overflow.
                        if self.a >= 0xFFFF_0000 {
                            self.a = (self.a & 0xFFFF) + (self.a >> 16);
                        }
                        data = rest;
                    } else {
                        self.pending = Some(hi);
                        return;
                    }
                }
                // ≤ 32768 words per block keeps the u32 accumulator from
                // overflowing; folding early leaves the final folded sum
                // unchanged (end-around-carry is associative).
                for block in data.chunks(1 << 16) {
                    let mut words = block.chunks_exact(2);
                    for w in &mut words {
                        self.a += u32::from(u16::from_be_bytes([w[0], w[1]]));
                    }
                    self.a = (self.a & 0xFFFF) + (self.a >> 16);
                    if let [last] = words.remainder() {
                        self.pending = Some(*last);
                    }
                }
            }
            ChecksumKind::Fletcher16 => {
                // Block-deferred modulo: with a, b < 255 on entry, 2048
                // bytes grow b by at most 255·2048² ≪ 2³², so one pair
                // of reductions per block suffices.
                for block in data.chunks(2048) {
                    for &byte in block {
                        self.a += u32::from(byte);
                        self.b += self.a;
                    }
                    self.a %= 255;
                    self.b %= 255;
                }
            }
            ChecksumKind::Fletcher32 => {
                let mut data = data;
                if let Some(hi) = self.pending.take() {
                    if let [first, rest @ ..] = data {
                        let w = u32::from(u16::from_be_bytes([hi, *first]));
                        self.a = (self.a + w) % 65535;
                        self.b = (self.b + self.a) % 65535;
                        data = rest;
                    } else {
                        self.pending = Some(hi);
                        return;
                    }
                }
                // 128 words per block bounds b below u32 overflow.
                for block in data.chunks(256) {
                    let mut words = block.chunks_exact(2);
                    for w in &mut words {
                        self.a += u32::from(u16::from_be_bytes([w[0], w[1]]));
                        self.b += self.a;
                    }
                    self.a %= 65535;
                    self.b %= 65535;
                    if let [last] = words.remainder() {
                        self.pending = Some(*last);
                    }
                }
            }
            ChecksumKind::Adler32 => {
                const MOD: u32 = 65521;
                // zlib's NMAX: the longest run that cannot overflow u32
                // between reductions.
                for block in data.chunks(5552) {
                    for &byte in block {
                        self.a += u32::from(byte);
                        self.b += self.a;
                    }
                    self.a %= MOD;
                    self.b %= MOD;
                }
            }
            ChecksumKind::Crc16Ccitt => {
                self.a = u32::from(crc16_update(self.a as u16, data));
            }
            ChecksumKind::Crc32Ieee => {
                let table = crc32_table();
                for &byte in data {
                    self.a = table[usize::from((self.a as u8) ^ byte)] ^ (self.a >> 8);
                }
            }
        }
    }

    /// Feeds `n` zero bytes (the codec engine's "own field zeroed" rule)
    /// without materialising a zero buffer. The additive algorithms use
    /// their closed forms (zero bytes leave `a` fixed and advance `b`
    /// by `n·a`); the CRCs stream a static zero block.
    pub fn update_zeros(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        if reference_mode() {
            for _ in 0..n {
                self.push_reference(0);
            }
            return;
        }
        match self.kind {
            ChecksumKind::Arq => {}
            ChecksumKind::Internet => {
                // Only the pairing alignment matters: a dangling high
                // byte pairs with the first zero, zero words add
                // nothing, and an odd leftover zero becomes pending.
                let mut n = n;
                if let Some(hi) = self.pending.take() {
                    self.a += u32::from(u16::from_be_bytes([hi, 0]));
                    if self.a >= 0xFFFF_0000 {
                        self.a = (self.a & 0xFFFF) + (self.a >> 16);
                    }
                    n -= 1;
                }
                if n % 2 == 1 {
                    self.pending = Some(0);
                }
            }
            ChecksumKind::Fletcher16 => {
                self.b = (self.b + (n as u32 % 255) * self.a) % 255;
            }
            ChecksumKind::Fletcher32 => {
                let mut n = n;
                if let Some(hi) = self.pending.take() {
                    let w = u32::from(u16::from_be_bytes([hi, 0]));
                    self.a = (self.a + w) % 65535;
                    self.b = (self.b + self.a) % 65535;
                    n -= 1;
                }
                let words = (n / 2) as u64;
                self.b = ((u64::from(self.b) + words % 65535 * u64::from(self.a)) % 65535) as u32;
                if n % 2 == 1 {
                    self.pending = Some(0);
                }
            }
            ChecksumKind::Adler32 => {
                const MOD: u64 = 65521;
                self.b = ((u64::from(self.b) + n as u64 % MOD * u64::from(self.a)) % MOD) as u32;
            }
            ChecksumKind::Crc16Ccitt | ChecksumKind::Crc32Ieee => {
                const ZEROS: [u8; 256] = [0; 256];
                let mut left = n;
                while left > 0 {
                    let take = left.min(ZEROS.len());
                    self.update(&ZEROS[..take]);
                    left -= take;
                }
            }
        }
    }

    /// One byte through the reference (pre-optimisation) path: a match
    /// on the kind per byte, bitwise CRCs, per-byte modular reductions
    /// — the engine exactly as originally written. Kept as the oracle
    /// for the fast path's equivalence proptests and as the
    /// `SimCore::Legacy` measurement baseline (see
    /// [`set_reference_mode`]).
    fn push_reference(&mut self, byte: u8) {
        match self.kind {
            ChecksumKind::Arq => {
                let mut sum = self.a + u32::from(byte);
                sum = (sum & 0xFF) + (sum >> 8);
                self.a = sum;
            }
            ChecksumKind::Internet => match self.pending.take() {
                Some(hi) => {
                    self.a += u32::from(u16::from_be_bytes([hi, byte]));
                    if self.a >= 0xFFFF_0000 {
                        self.a = (self.a & 0xFFFF) + (self.a >> 16);
                    }
                }
                None => self.pending = Some(byte),
            },
            ChecksumKind::Fletcher16 => {
                self.a = (self.a + u32::from(byte)) % 255;
                self.b = (self.b + self.a) % 255;
            }
            ChecksumKind::Fletcher32 => match self.pending.take() {
                Some(hi) => {
                    let w = u32::from(u16::from_be_bytes([hi, byte]));
                    self.a = (self.a + w) % 65535;
                    self.b = (self.b + self.a) % 65535;
                }
                None => self.pending = Some(byte),
            },
            ChecksumKind::Adler32 => {
                const MOD: u32 = 65521;
                self.a = (self.a + u32::from(byte)) % MOD;
                self.b = (self.b + self.a) % MOD;
            }
            ChecksumKind::Crc16Ccitt => {
                let mut crc = self.a as u16;
                crc ^= u16::from(byte) << 8;
                for _ in 0..8 {
                    crc = if crc & 0x8000 != 0 {
                        (crc << 1) ^ 0x1021
                    } else {
                        crc << 1
                    };
                }
                self.a = u32::from(crc);
            }
            ChecksumKind::Crc32Ieee => {
                self.a = crc32_table()[usize::from((self.a as u8) ^ byte)] ^ (self.a >> 8);
            }
        }
    }

    /// Finalises (padding any odd trailing byte with zero, as the
    /// one-shot functions do) and returns the checksum widened to `u64`.
    pub fn finish(mut self) -> u64 {
        if let Some(hi) = self.pending.take() {
            // Word-paired sums zero-pad the dangling byte.
            match self.kind {
                ChecksumKind::Internet => {
                    self.a += u32::from(u16::from_be_bytes([hi, 0]));
                }
                ChecksumKind::Fletcher32 => {
                    let w = u32::from(u16::from_be_bytes([hi, 0]));
                    self.a = (self.a + w) % 65535;
                    self.b = (self.b + self.a) % 65535;
                }
                _ => unreachable!("only word-paired kinds buffer a byte"),
            }
        }
        match self.kind {
            ChecksumKind::Arq => {
                let mut sum = self.a;
                sum = (sum & 0xFF) + (sum >> 8);
                u64::from(!(sum as u8))
            }
            ChecksumKind::Internet => {
                let mut sum = self.a;
                while sum >> 16 != 0 {
                    sum = (sum & 0xFFFF) + (sum >> 16);
                }
                u64::from(!(sum as u16))
            }
            ChecksumKind::Fletcher16 => u64::from(((self.b as u16) << 8) | self.a as u16),
            ChecksumKind::Fletcher32 => u64::from((self.b << 16) | self.a),
            ChecksumKind::Adler32 => u64::from((self.b << 16) | self.a),
            ChecksumKind::Crc16Ccitt => u64::from(self.a as u16),
            ChecksumKind::Crc32Ieee => u64::from(!self.a),
        }
    }
}

/// The paper's ARQ checksum: `check seq data`, a single byte combining the
/// sequence number and payload.
///
/// Defined as the ones'-complement of the byte-wise ones'-complement sum of
/// the sequence number and every payload byte, so single-bit errors and
/// byte reorderings with carry effects are detected while staying cheap
/// enough for the worked example.
pub fn arq_check(seq: u8, data: &[u8]) -> u8 {
    // Deferred end-around-carry: sum raw (bounded per block), fold at
    // block boundaries — identical to folding per byte, because the
    // ones'-complement fold preserves the residue and its canonical
    // nonzero representative.
    let mut sum: u32 = u32::from(seq);
    for block in data.chunks(1 << 16) {
        sum += block.iter().map(|&b| u32::from(b)).sum::<u32>();
        while sum > 0xFF {
            sum = (sum & 0xFF) + (sum >> 8);
        }
    }
    !(sum as u8)
}

/// Verifies the paper's ARQ checksum.
pub fn arq_verify(seq: u8, data: &[u8], carried: u8) -> bool {
    arq_check(seq, data) == carried
}

/// RFC 1071 Internet checksum over `data` (odd trailing byte zero-padded).
///
/// Returns the ones'-complement of the ones'-complement 16-bit sum, i.e.
/// the value actually placed in IPv4/UDP/TCP checksum fields.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// The 16-bit ones'-complement sum *without* the final complement.
///
/// Exposed separately because incremental-update tricks (RFC 1624) and
/// pseudo-header folding need the raw sum.
pub fn ones_complement_sum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        // Early end-around-carry fold: inputs beyond ~128 KiB would
        // otherwise overflow the accumulator; folding early leaves the
        // final folded sum unchanged.
        if sum >= 0xFFFF_0000 {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

/// Fletcher-16 checksum (modulo 255).
pub fn fletcher16(data: &[u8]) -> u16 {
    let (mut a, mut b): (u16, u16) = (0, 0);
    for &byte in data {
        a = (a + u16::from(byte)) % 255;
        b = (b + a) % 255;
    }
    (b << 8) | a
}

/// Fletcher-32 checksum over 16-bit words (odd trailing byte zero-padded).
pub fn fletcher32(data: &[u8]) -> u32 {
    let (mut a, mut b): (u32, u32) = (0, 0);
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        let w = u32::from(u16::from_be_bytes([c[0], c[1]]));
        a = (a + w) % 65535;
        b = (b + a) % 65535;
    }
    if let [last] = chunks.remainder() {
        let w = u32::from(u16::from_be_bytes([*last, 0]));
        a = (a + w) % 65535;
        b = (b + a) % 65535;
    }
    (b << 16) | a
}

/// Adler-32 checksum as used by zlib (RFC 1950).
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65521;
    let (mut a, mut b): (u32, u32) = (1, 0);
    for &byte in data {
        a = (a + u32::from(byte)) % MOD;
        b = (b + a) % MOD;
    }
    (b << 16) | a
}

/// The CRC-16/CCITT slicing tables (non-reflected, polynomial 0x1021),
/// built at first use — shared by the one-shot [`crc16_ccitt`] and the
/// streaming [`ChecksumEngine`]. `TABLES[k][v]` is the raw (zero-state)
/// CRC of byte `v` followed by `k` zero bytes, which is what lets eight
/// input bytes be processed per iteration: by linearity over GF(2) the
/// running state folds into the first two bytes and the rest index
/// independent tables (classic slicing-by-N). CRC-16 runs over every
/// sliding-window frame, so this loop is a first-order term in campaign
/// throughput (E11/E13); the bitwise reference
/// ([`crc16_ccitt_bitwise`]) is kept and proptest-pinned equal.
fn crc16_tables() -> &'static [[u16; 256]; 8] {
    static TABLES: std::sync::OnceLock<[[u16; 256]; 8]> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u16; 256]; 8];
        for (v, entry) in t[0].iter_mut().enumerate() {
            let mut crc = (v as u16) << 8;
            for _ in 0..8 {
                crc = if crc & 0x8000 != 0 {
                    (crc << 1) ^ 0x1021
                } else {
                    crc << 1
                };
            }
            *entry = crc;
        }
        for k in 1..8 {
            let (done, rest) = t.split_at_mut(k);
            for (v, entry) in rest[0].iter_mut().enumerate() {
                let prev = done[k - 1][v];
                *entry = (prev << 8) ^ done[0][usize::from((prev >> 8) as u8)];
            }
        }
        t
    })
}

/// One slicing step over up to 8 bytes plus the byte-at-a-time tail.
fn crc16_update(mut crc: u16, data: &[u8]) -> u16 {
    let t = crc16_tables();
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        crc = t[7][usize::from(c[0] ^ (crc >> 8) as u8)]
            ^ t[6][usize::from(c[1] ^ (crc & 0xFF) as u8)]
            ^ t[5][usize::from(c[2])]
            ^ t[4][usize::from(c[3])]
            ^ t[3][usize::from(c[4])]
            ^ t[2][usize::from(c[5])]
            ^ t[1][usize::from(c[6])]
            ^ t[0][usize::from(c[7])];
    }
    for &byte in chunks.remainder() {
        crc = (crc << 8) ^ t[0][usize::from((crc >> 8) as u8 ^ byte)];
    }
    crc
}

/// CRC-16/CCITT-FALSE: polynomial 0x1021, initial value 0xFFFF, no
/// reflection, no final XOR. Table-driven (slicing-by-8).
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    crc16_update(0xFFFF, data)
}

/// Bit-by-bit CRC-16/CCITT-FALSE reference implementation, kept as the
/// oracle the table-driven [`crc16_ccitt`] is property-tested against.
pub fn crc16_ccitt_bitwise(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= u16::from(byte) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// The reflected CRC-32 lookup table, built at first use (shared by the
/// one-shot [`crc32_ieee`] and the streaming [`ChecksumEngine`]).
fn crc32_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// CRC-32 (IEEE 802.3): reflected polynomial 0xEDB88320, init and final
/// XOR 0xFFFFFFFF. Table-driven, table built at first use.
pub fn crc32_ieee(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc = table[usize::from((crc as u8) ^ byte)] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const CHECK_STR: &[u8] = b"123456789";

    #[test]
    fn crc32_known_vector() {
        // Standard check value for "123456789".
        assert_eq!(crc32_ieee(CHECK_STR), 0xCBF4_3926);
        assert_eq!(crc32_ieee(b""), 0);
    }

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE check value.
        assert_eq!(crc16_ccitt(CHECK_STR), 0x29B1);
        assert_eq!(crc16_ccitt(b""), 0xFFFF);
    }

    #[test]
    fn adler32_known_vector() {
        // Adler-32 of "Wikipedia" per the published example.
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
        assert_eq!(adler32(b""), 1);
    }

    #[test]
    fn fletcher16_known_vectors() {
        assert_eq!(fletcher16(b"abcde"), 0xC8F0);
        assert_eq!(fletcher16(b"abcdef"), 0x2057);
        assert_eq!(fletcher16(b"abcdefgh"), 0x0627);
    }

    #[test]
    fn internet_checksum_rfc1071_example() {
        // The worked example from RFC 1071 §3: words 0x0001 0xf203 0xf4f5
        // 0xf6f7 sum to 0xddf2 before complement.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data), 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn internet_checksum_odd_length_pads() {
        assert_eq!(internet_checksum(&[0xFF]), internet_checksum(&[0xFF, 0x00]));
    }

    #[test]
    fn verifying_frame_with_embedded_internet_checksum_yields_zero_sum() {
        // Classic receiver check: sum over data + checksum = 0xFFFF.
        let data = [0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06];
        let ck = internet_checksum(&data);
        let mut frame = data.to_vec();
        frame.extend_from_slice(&ck.to_be_bytes());
        assert_eq!(ones_complement_sum(&frame), 0xFFFF);
    }

    #[test]
    fn arq_check_detects_seq_and_payload_changes() {
        let c = arq_check(7, b"hello");
        assert!(arq_verify(7, b"hello", c));
        assert!(!arq_verify(8, b"hello", c));
        assert!(!arq_verify(7, b"hellp", c));
    }

    #[test]
    fn checksum_kind_widths_match_algorithms() {
        assert_eq!(ChecksumKind::Arq.width_bits(), 8);
        assert_eq!(ChecksumKind::Internet.width_bits(), 16);
        assert_eq!(ChecksumKind::Fletcher16.width_bits(), 16);
        assert_eq!(ChecksumKind::Crc16Ccitt.width_bits(), 16);
        assert_eq!(ChecksumKind::Fletcher32.width_bits(), 32);
        assert_eq!(ChecksumKind::Adler32.width_bits(), 32);
        assert_eq!(ChecksumKind::Crc32Ieee.width_bits(), 32);
    }

    #[test]
    fn checksum_kind_compute_fits_declared_width() {
        let kinds = [
            ChecksumKind::Arq,
            ChecksumKind::Internet,
            ChecksumKind::Fletcher16,
            ChecksumKind::Fletcher32,
            ChecksumKind::Adler32,
            ChecksumKind::Crc16Ccitt,
            ChecksumKind::Crc32Ieee,
        ];
        for k in kinds {
            let v = k.compute(CHECK_STR);
            let w = k.width_bits();
            assert!(
                w == 64 || v >> w == 0,
                "{k:?} produced over-wide value {v:#x}"
            );
        }
    }

    const ALL_KINDS: [ChecksumKind; 7] = [
        ChecksumKind::Arq,
        ChecksumKind::Internet,
        ChecksumKind::Fletcher16,
        ChecksumKind::Fletcher32,
        ChecksumKind::Adler32,
        ChecksumKind::Crc16Ccitt,
        ChecksumKind::Crc32Ieee,
    ];

    #[test]
    fn internet_engine_survives_long_single_byte_streams() {
        // Regression: every odd-aligned single-byte update merges the
        // pending byte outside the block loop, so the fold must happen
        // at the merge — 200k bytes of 0xFF would otherwise overflow
        // the accumulator (debug panic / silent wrap in release).
        let n = 200_001;
        let mut e = ChecksumEngine::new(ChecksumKind::Internet);
        for _ in 0..n {
            e.update(&[0xFF]);
        }
        assert_eq!(
            e.finish(),
            ChecksumKind::Internet.compute(&vec![0xFF; n]),
            "byte-at-a-time streaming equals one-shot"
        );
    }

    #[test]
    fn engine_matches_one_shot_on_empty_input() {
        for kind in ALL_KINDS {
            assert_eq!(
                ChecksumEngine::new(kind).finish(),
                kind.compute(b""),
                "{kind:?} empty"
            );
        }
    }

    #[test]
    fn engine_update_zeros_equals_feeding_zero_bytes() {
        for kind in ALL_KINDS {
            let mut by_run = ChecksumEngine::new(kind);
            by_run.update(b"ab");
            by_run.update_zeros(3);
            by_run.update(b"c");
            assert_eq!(
                by_run.finish(),
                kind.compute(b"ab\0\0\0c"),
                "{kind:?} zeros"
            );
        }
    }

    proptest! {
        /// Streaming over arbitrary run boundaries equals the one-shot
        /// computation over the concatenation — the law the compiled
        /// codec's allocation-free checksum path rests on.
        #[test]
        fn engine_matches_one_shot_across_splits(
            data in proptest::collection::vec(any::<u8>(), 0..96),
            cut_a in 0usize..96,
            cut_b in 0usize..96,
        ) {
            let cut_a = cut_a % (data.len() + 1);
            let cut_b = cut_b % (data.len() + 1);
            let (lo, hi) = (cut_a.min(cut_b), cut_a.max(cut_b));
            for kind in ALL_KINDS {
                let mut e = ChecksumEngine::new(kind);
                e.update(&data[..lo]);
                e.update(&data[lo..hi]);
                e.update(&data[hi..]);
                prop_assert_eq!(e.finish(), kind.compute(&data), "{:?}", kind);
            }
        }

        /// The table-driven CRC-16 equals the bitwise reference on
        /// arbitrary input (the table is an optimisation, not a new
        /// algorithm).
        #[test]
        fn crc16_table_matches_bitwise_reference(
            data in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            prop_assert_eq!(crc16_ccitt(&data), crc16_ccitt_bitwise(&data));
        }

        /// The sliced/deferred-reduction fast path of the streaming
        /// engine equals its byte-at-a-time reference implementation
        /// over arbitrary run/zero-run interleavings — the law that
        /// makes `set_reference_mode` a pure measurement knob.
        #[test]
        fn engine_fast_path_matches_reference_path(
            runs in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..48), 0usize..9),
                0..6,
            ),
        ) {
            for kind in ALL_KINDS {
                let mut fast = ChecksumEngine::new(kind);
                for (data, zeros) in &runs {
                    fast.update(data);
                    fast.update_zeros(*zeros);
                }
                let was = set_reference_mode(true);
                let mut reference = ChecksumEngine::new(kind);
                for (data, zeros) in &runs {
                    reference.update(data);
                    reference.update_zeros(*zeros);
                }
                set_reference_mode(was);
                prop_assert_eq!(fast.finish(), reference.finish(), "{:?}", kind);
            }
        }

        /// Single-bit flips are always detected by every algorithm.
        #[test]
        fn single_bit_flip_detected(
            data in proptest::collection::vec(any::<u8>(), 1..128),
            byte_idx in 0usize..128,
            bit in 0u8..8,
        ) {
            let byte_idx = byte_idx % data.len();
            let mut corrupt = data.clone();
            corrupt[byte_idx] ^= 1 << bit;
            prop_assert_ne!(crc32_ieee(&data), crc32_ieee(&corrupt));
            prop_assert_ne!(crc16_ccitt(&data), crc16_ccitt(&corrupt));
            prop_assert_ne!(internet_checksum(&data), internet_checksum(&corrupt));
        }

        /// The ARQ verify function accepts exactly what check produced.
        #[test]
        fn arq_check_verify_inverse(seq in any::<u8>(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let c = arq_check(seq, &data);
            prop_assert!(arq_verify(seq, &data, c));
        }

        /// Ones'-complement sum is byte-order-stable under 16-bit word
        /// swaps: reordering whole words leaves the sum unchanged
        /// (documented weakness of the Internet checksum that CRCs fix).
        #[test]
        fn internet_sum_word_reorder_invariant(words in proptest::collection::vec(any::<u16>(), 1..32)) {
            let mut bytes = Vec::new();
            for w in &words {
                bytes.extend_from_slice(&w.to_be_bytes());
            }
            let mut rev = words.clone();
            rev.reverse();
            let mut rev_bytes = Vec::new();
            for w in &rev {
                rev_bytes.extend_from_slice(&w.to_be_bytes());
            }
            prop_assert_eq!(internet_checksum(&bytes), internet_checksum(&rev_bytes));
        }

        /// Fletcher, by contrast, is position sensitive: verify it detects
        /// a swap of two different adjacent words.
        #[test]
        fn fletcher_detects_word_swap(a in any::<u16>(), b in any::<u16>()) {
            prop_assume!(a != b);
            let mut fwd = Vec::new();
            fwd.extend_from_slice(&a.to_be_bytes());
            fwd.extend_from_slice(&b.to_be_bytes());
            let mut rev = Vec::new();
            rev.extend_from_slice(&b.to_be_bytes());
            rev.extend_from_slice(&a.to_be_bytes());
            // Fletcher-32 over distinct word pairs differs unless the words
            // are congruent mod 65535 (e.g. 0x0000 vs 0xFFFF).
            prop_assume!(a % 0xFFFF != b % 0xFFFF);
            prop_assert_ne!(fletcher32(&fwd), fletcher32(&rev));
        }
    }
}
