//! Growable wire buffer and reading cursor.
//!
//! [`WireBuffer`] accumulates an outgoing frame; [`ReadCursor`] walks an
//! incoming one byte-wise. Both are thin, allocation-conscious layers over
//! [`bytes`] so larger payloads can be sliced without copying.

use bytes::{Bytes, BytesMut};

use crate::endian::{self, Endianness};
use crate::error::WireError;

/// An append-only frame under construction.
///
/// # Examples
///
/// ```
/// use netdsl_wire::WireBuffer;
/// use netdsl_wire::endian::Endianness;
///
/// let mut buf = WireBuffer::new();
/// buf.put_u8(0x45);
/// buf.put_u16(20, Endianness::Big);
/// assert_eq!(buf.as_slice(), &[0x45, 0x00, 0x14]);
/// let frame = buf.freeze();
/// assert_eq!(frame.len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WireBuffer {
    inner: BytesMut,
}

impl WireBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer with the given byte capacity pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        WireBuffer {
            inner: BytesMut::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.inner.extend_from_slice(&[v]);
    }

    /// Appends a 16-bit integer in the given byte order.
    pub fn put_u16(&mut self, v: u16, endian: Endianness) {
        let mut tmp = Vec::with_capacity(2);
        endian::write_u16(&mut tmp, v, endian);
        self.inner.extend_from_slice(&tmp);
    }

    /// Appends a 32-bit integer in the given byte order.
    pub fn put_u32(&mut self, v: u32, endian: Endianness) {
        let mut tmp = Vec::with_capacity(4);
        endian::write_u32(&mut tmp, v, endian);
        self.inner.extend_from_slice(&tmp);
    }

    /// Appends a 64-bit integer in the given byte order.
    pub fn put_u64(&mut self, v: u64, endian: Endianness) {
        let mut tmp = Vec::with_capacity(8);
        endian::write_u64(&mut tmp, v, endian);
        self.inner.extend_from_slice(&tmp);
    }

    /// Appends raw bytes.
    pub fn put_slice(&mut self, data: &[u8]) {
        self.inner.extend_from_slice(data);
    }

    /// Overwrites `len` bytes at `offset` (used to patch checksum/length
    /// fields after the payload is known).
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] if `offset + data.len()` exceeds the
    /// buffer.
    pub fn patch(&mut self, offset: usize, data: &[u8]) -> Result<(), WireError> {
        if offset + data.len() > self.inner.len() {
            return Err(WireError::UnexpectedEnd {
                requested: (offset + data.len()) * 8,
                available: self.inner.len() * 8,
            });
        }
        self.inner[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Borrows the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.inner
    }

    /// Finishes the frame as an immutable, cheaply-cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        self.inner.freeze()
    }

    /// Finishes the frame as an owned `Vec<u8>`.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner.to_vec()
    }
}

impl AsRef<[u8]> for WireBuffer {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for WireBuffer {
    fn from(v: Vec<u8>) -> Self {
        WireBuffer {
            inner: BytesMut::from(&v[..]),
        }
    }
}

/// A byte-wise reading cursor over a received frame.
///
/// # Examples
///
/// ```
/// use netdsl_wire::ReadCursor;
/// use netdsl_wire::endian::Endianness;
///
/// # fn main() -> Result<(), netdsl_wire::WireError> {
/// let mut c = ReadCursor::new(&[0x45, 0x00, 0x14, 0xAA]);
/// assert_eq!(c.take_u8()?, 0x45);
/// assert_eq!(c.take_u16(Endianness::Big)?, 0x0014);
/// assert_eq!(c.take_slice(1)?, &[0xAA]);
/// assert!(c.is_empty());
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct ReadCursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ReadCursor<'a> {
    /// Creates a cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        ReadCursor { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// `true` when all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn ensure(&self, n: usize) -> Result<(), WireError> {
        if self.remaining() < n {
            Err(WireError::UnexpectedEnd {
                requested: n * 8,
                available: self.remaining() * 8,
            })
        } else {
            Ok(())
        }
    }

    /// Consumes one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] if the cursor is exhausted.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        self.ensure(1)?;
        let v = self.data[self.pos];
        self.pos += 1;
        Ok(v)
    }

    /// Consumes a 16-bit integer.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] if fewer than 2 bytes remain.
    pub fn take_u16(&mut self, endian: Endianness) -> Result<u16, WireError> {
        self.ensure(2)?;
        let v = endian::read_u16(&self.data[self.pos..], endian)?;
        self.pos += 2;
        Ok(v)
    }

    /// Consumes a 32-bit integer.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] if fewer than 4 bytes remain.
    pub fn take_u32(&mut self, endian: Endianness) -> Result<u32, WireError> {
        self.ensure(4)?;
        let v = endian::read_u32(&self.data[self.pos..], endian)?;
        self.pos += 4;
        Ok(v)
    }

    /// Consumes a 64-bit integer.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] if fewer than 8 bytes remain.
    pub fn take_u64(&mut self, endian: Endianness) -> Result<u64, WireError> {
        self.ensure(8)?;
        let v = endian::read_u64(&self.data[self.pos..], endian)?;
        self.pos += 8;
        Ok(v)
    }

    /// Consumes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] if fewer than `n` bytes remain.
    pub fn take_slice(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.ensure(n)?;
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consumes and returns everything left.
    pub fn take_rest(&mut self) -> &'a [u8] {
        let s = &self.data[self.pos..];
        self.pos = self.data.len();
        s
    }

    /// Peeks at the next byte without consuming it.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] if the cursor is exhausted.
    pub fn peek_u8(&self) -> Result<u8, WireError> {
        self.ensure(1)?;
        Ok(self.data[self.pos])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buffer_accumulates_in_order() {
        let mut b = WireBuffer::new();
        b.put_u8(1);
        b.put_u16(0x0203, Endianness::Big);
        b.put_u32(0x0405_0607, Endianness::Big);
        b.put_slice(&[8, 9]);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(b.len(), 9);
        assert!(!b.is_empty());
    }

    #[test]
    fn patch_rewrites_in_place() {
        let mut b = WireBuffer::new();
        b.put_u32(0, Endianness::Big);
        b.put_u8(0xEE);
        b.patch(1, &[0xAB, 0xCD]).unwrap();
        assert_eq!(b.as_slice(), &[0, 0xAB, 0xCD, 0, 0xEE]);
    }

    #[test]
    fn patch_out_of_range_errors() {
        let mut b = WireBuffer::new();
        b.put_u8(0);
        assert!(b.patch(1, &[1]).is_err());
        assert!(b.patch(0, &[1, 2]).is_err());
    }

    #[test]
    fn freeze_preserves_contents() {
        let mut b = WireBuffer::with_capacity(4);
        b.put_u32(0xDEAD_BEEF, Endianness::Big);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[0xDE, 0xAD, 0xBE, 0xEF]);
    }

    #[test]
    fn cursor_reads_in_order_and_errors_at_end() {
        let mut c = ReadCursor::new(&[1, 2, 3]);
        assert_eq!(c.peek_u8().unwrap(), 1);
        assert_eq!(c.take_u8().unwrap(), 1);
        assert_eq!(c.take_u16(Endianness::Big).unwrap(), 0x0203);
        assert!(c.take_u8().is_err());
        assert!(c.peek_u8().is_err());
    }

    #[test]
    fn take_rest_empties_cursor() {
        let mut c = ReadCursor::new(&[1, 2, 3, 4]);
        c.take_u8().unwrap();
        assert_eq!(c.take_rest(), &[2, 3, 4]);
        assert!(c.is_empty());
        assert_eq!(c.take_rest(), &[] as &[u8]);
    }

    #[test]
    fn from_vec_roundtrip() {
        let b = WireBuffer::from(vec![9, 8, 7]);
        assert_eq!(b.into_vec(), vec![9, 8, 7]);
    }

    proptest! {
        /// Everything put into a buffer comes back out of a cursor.
        #[test]
        fn buffer_cursor_roundtrip(
            a in any::<u8>(), b in any::<u16>(), c in any::<u32>(), d in any::<u64>(),
            tail in proptest::collection::vec(any::<u8>(), 0..32),
        ) {
            let mut buf = WireBuffer::new();
            buf.put_u8(a);
            buf.put_u16(b, Endianness::Big);
            buf.put_u32(c, Endianness::Little);
            buf.put_u64(d, Endianness::Big);
            buf.put_slice(&tail);
            let bytes = buf.into_vec();
            let mut cur = ReadCursor::new(&bytes);
            prop_assert_eq!(cur.take_u8().unwrap(), a);
            prop_assert_eq!(cur.take_u16(Endianness::Big).unwrap(), b);
            prop_assert_eq!(cur.take_u32(Endianness::Little).unwrap(), c);
            prop_assert_eq!(cur.take_u64(Endianness::Big).unwrap(), d);
            prop_assert_eq!(cur.take_rest(), &tail[..]);
        }
    }
}
