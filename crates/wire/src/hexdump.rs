//! Human-readable renderings of raw frames.
//!
//! Two views are provided: a conventional hex+ASCII dump ([`hexdump`]) and
//! the RFC-style 32-bit-per-row "ASCII picture" ([`rfc_picture`]) that the
//! paper's Figure 1 uses — useful when eyeballing codec output against a
//! published header diagram.

use std::fmt::Write as _;

/// Renders `data` as a classic 16-bytes-per-line hex dump with an ASCII
/// gutter.
///
/// # Examples
///
/// ```
/// let dump = netdsl_wire::hexdump::hexdump(b"GET / HTTP/1.1\r\n");
/// assert!(dump.contains("47 45 54"));
/// assert!(dump.contains("GET / HTTP/1.1"));
/// ```
pub fn hexdump(data: &[u8]) -> String {
    let mut out = String::new();
    for (i, chunk) in data.chunks(16).enumerate() {
        let _ = write!(out, "{:08x}  ", i * 16);
        for j in 0..16 {
            match chunk.get(j) {
                Some(b) => {
                    let _ = write!(out, "{b:02x} ");
                }
                None => out.push_str("   "),
            }
            if j == 7 {
                out.push(' ');
            }
        }
        out.push(' ');
        for b in chunk {
            out.push(if b.is_ascii_graphic() || *b == b' ' {
                *b as char
            } else {
                '.'
            });
        }
        out.push('\n');
    }
    out
}

/// Renders `data` as an RFC-style bit diagram: 32 bits per row, `+-+`
/// rules between rows, matching the visual convention of Figure 1 of the
/// paper (the RFC 791 IPv4 header picture).
pub fn rfc_picture(data: &[u8]) -> String {
    const RULE: &str = "+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+\n";
    let mut out = String::new();
    out.push_str(" 0                   1                   2                   3\n");
    out.push_str(" 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1\n");
    out.push_str(RULE);
    for row in data.chunks(4) {
        out.push('|');
        for byte in row {
            for bit in (0..8).rev() {
                let _ = write!(out, "{}|", (byte >> bit) & 1);
            }
        }
        out.push('\n');
        out.push_str(RULE);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hexdump_includes_offsets_hex_and_ascii() {
        let d = hexdump(b"hello world, this is longer than sixteen bytes");
        assert!(d.starts_with("00000000"));
        assert!(d.contains("00000010"), "second line offset present");
        assert!(d.contains("68 65 6c 6c 6f"));
        assert!(d.contains("hello world"));
    }

    #[test]
    fn hexdump_masks_non_printable() {
        let d = hexdump(&[0x00, 0x1F, 0x41]);
        assert!(d.contains("..A"));
    }

    #[test]
    fn hexdump_empty_is_empty() {
        assert_eq!(hexdump(&[]), "");
    }

    #[test]
    fn rfc_picture_has_32_bits_per_row() {
        let pic = rfc_picture(&[0x45, 0x00, 0x00, 0x14]);
        let data_row = pic
            .lines()
            .find(|l| l.starts_with('|') && l.contains('0'))
            .unwrap();
        // 32 bits, each followed by '|', plus the leading '|'.
        assert_eq!(data_row.matches('|').count(), 33);
        // 0x45 = 0100 0101
        assert!(data_row.starts_with("|0|1|0|0|0|1|0|1|"));
    }

    #[test]
    fn rfc_picture_rows_scale_with_length() {
        let pic = rfc_picture(&[0u8; 20]); // IPv4 header length
        let rows = pic.lines().filter(|l| l.starts_with('|')).count();
        assert_eq!(rows, 5, "20 bytes = five 32-bit rows");
    }
}
