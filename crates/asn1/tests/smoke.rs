//! Crate-level smoke test: DER encode/decode round-trips.

use netdsl_asn1::{der, AsnValue};

#[test]
fn der_roundtrip_nested() {
    let v = AsnValue::Sequence(vec![
        AsnValue::Integer(42),
        AsnValue::OctetString(b"hi".to_vec()),
        AsnValue::Boolean(true),
        AsnValue::Sequence(vec![AsnValue::Null]),
    ]);
    let bytes = der::encode(&v);
    assert_eq!(der::decode(&bytes).expect("decodes"), v);
    // DER is canonical: re-encoding reproduces the bytes.
    assert_eq!(der::encode(&der::decode(&bytes).unwrap()), bytes);
}
