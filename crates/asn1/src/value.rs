//! The abstract value model.

use std::fmt;

/// An ASN.1 abstract value (the universal types this crate supports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsnValue {
    /// BOOLEAN.
    Boolean(bool),
    /// INTEGER (bounded to `i64` here).
    Integer(i64),
    /// OCTET STRING.
    OctetString(Vec<u8>),
    /// NULL.
    Null,
    /// ENUMERATED (an integer drawn from a named set; the set lives in
    /// the schema, as in ASN.1 itself).
    Enumerated(i64),
    /// UTF8String.
    Utf8String(String),
    /// SEQUENCE (ordered, heterogeneous).
    Sequence(Vec<AsnValue>),
}

impl AsnValue {
    /// A short name for diagnostics ("INTEGER", "SEQUENCE", …).
    pub fn type_name(&self) -> &'static str {
        match self {
            AsnValue::Boolean(_) => "BOOLEAN",
            AsnValue::Integer(_) => "INTEGER",
            AsnValue::OctetString(_) => "OCTET STRING",
            AsnValue::Null => "NULL",
            AsnValue::Enumerated(_) => "ENUMERATED",
            AsnValue::Utf8String(_) => "UTF8String",
            AsnValue::Sequence(_) => "SEQUENCE",
        }
    }
}

impl fmt::Display for AsnValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsnValue::Boolean(b) => write!(f, "{b}"),
            AsnValue::Integer(i) | AsnValue::Enumerated(i) => write!(f, "{i}"),
            AsnValue::OctetString(b) => {
                for byte in b {
                    write!(f, "{byte:02x}")?;
                }
                Ok(())
            }
            AsnValue::Null => write!(f, "null"),
            AsnValue::Utf8String(s) => write!(f, "{s:?}"),
            AsnValue::Sequence(items) => {
                write!(f, "{{")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for AsnValue {
    fn from(b: bool) -> Self {
        AsnValue::Boolean(b)
    }
}

impl From<i64> for AsnValue {
    fn from(i: i64) -> Self {
        AsnValue::Integer(i)
    }
}

impl From<Vec<u8>> for AsnValue {
    fn from(b: Vec<u8>) -> Self {
        AsnValue::OctetString(b)
    }
}

impl From<&str> for AsnValue {
    fn from(s: &str) -> Self {
        AsnValue::Utf8String(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_names() {
        assert_eq!(AsnValue::from(true).type_name(), "BOOLEAN");
        assert_eq!(AsnValue::from(5i64).type_name(), "INTEGER");
        assert_eq!(AsnValue::from(vec![1u8]).type_name(), "OCTET STRING");
        assert_eq!(AsnValue::from("x").type_name(), "UTF8String");
    }

    #[test]
    fn display_renders_nested() {
        let v = AsnValue::Sequence(vec![
            AsnValue::Integer(1),
            AsnValue::OctetString(vec![0xAB]),
            AsnValue::Null,
        ]);
        assert_eq!(v.to_string(), "{1, ab, null}");
    }
}
