//! # netdsl-asn1 — minimal ASN.1 with DER encoding
//!
//! The paper's §2.1 discusses ASN.1 as the second formal *syntactic*
//! notation for message formats: "ASN.1 … uses abstract data types to
//! define data structures … and relies on the use of an associated set of
//! formal encoding rules … to define the on-the-wire encodings. The use
//! of different encoding rules can give different on-the-wire packets for
//! the same ASN.1."
//!
//! This crate builds that baseline so the workspace can *compare* it with
//! the DSL: an abstract value model ([`AsnValue`]), one concrete encoding
//! rule set (DER, [`der`]), and a schema layer ([`schema::AsnType`]) that
//! checks shape and simple constraints. What it deliberately **cannot**
//! express — checksums over sibling fields, lengths derived from layout,
//! protocol behaviour — is exactly the gap §2.2 identifies and
//! `netdsl-core` fills.
//!
//! # Examples
//!
//! ```
//! use netdsl_asn1::{AsnValue, der};
//!
//! let v = AsnValue::Sequence(vec![
//!     AsnValue::Integer(42),
//!     AsnValue::OctetString(b"hi".to_vec()),
//!     AsnValue::Boolean(true),
//! ]);
//! let bytes = der::encode(&v);
//! assert_eq!(der::decode(&bytes).unwrap(), v);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod der;
pub mod error;
pub mod schema;
pub mod value;

pub use error::Asn1Error;
pub use schema::AsnType;
pub use value::AsnValue;
