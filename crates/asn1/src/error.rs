//! Error type for DER decoding and schema checking.

use std::error::Error;
use std::fmt;

/// Errors from DER decoding or schema validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Asn1Error {
    /// The input ended inside a TLV.
    Truncated,
    /// An unknown or unsupported tag byte.
    UnknownTag(u8),
    /// A length field was malformed (non-minimal long form, or > usize).
    BadLength,
    /// DER requires minimal encodings; this one was not (e.g. padded
    /// integer).
    NonCanonical(&'static str),
    /// Bytes left over after the outermost value.
    TrailingBytes(usize),
    /// The value does not match the schema.
    SchemaMismatch {
        /// What the schema expected.
        expected: String,
        /// What the value was.
        found: String,
    },
    /// A constrained value fell outside its bounds.
    ConstraintViolation(String),
    /// Boolean contents must be exactly one byte, 0x00 or 0xFF.
    BadBoolean,
    /// UTF8String contents were not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for Asn1Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Asn1Error::Truncated => write!(f, "input truncated inside a TLV"),
            Asn1Error::UnknownTag(t) => write!(f, "unknown or unsupported tag {t:#04x}"),
            Asn1Error::BadLength => write!(f, "malformed length field"),
            Asn1Error::NonCanonical(what) => write!(f, "non-canonical DER: {what}"),
            Asn1Error::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            Asn1Error::SchemaMismatch { expected, found } => {
                write!(f, "schema expected {expected}, found {found}")
            }
            Asn1Error::ConstraintViolation(what) => write!(f, "constraint violated: {what}"),
            Asn1Error::BadBoolean => write!(f, "boolean contents must be one byte, 0x00 or 0xff"),
            Asn1Error::BadUtf8 => write!(f, "utf8string contents are not valid utf-8"),
        }
    }
}

impl Error for Asn1Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_bounds() {
        assert!(Asn1Error::UnknownTag(0x7F).to_string().contains("0x7f"));
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<Asn1Error>();
    }
}
