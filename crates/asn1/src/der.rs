//! DER (Distinguished Encoding Rules) for the supported universal types.
//!
//! DER is the canonical subset of BER: definite lengths only, minimal
//! length forms, minimal integer encodings, booleans as `0xFF`/`0x00`.
//! The decoder *enforces* canonicality — a BER-legal but non-DER input is
//! rejected — which is the property that makes encodings comparable
//! byte-for-byte (and what signature schemes rely on).

use crate::error::Asn1Error;
use crate::value::AsnValue;

/// Universal tag numbers used here.
mod tag {
    pub const BOOLEAN: u8 = 0x01;
    pub const INTEGER: u8 = 0x02;
    pub const OCTET_STRING: u8 = 0x04;
    pub const NULL: u8 = 0x05;
    pub const ENUMERATED: u8 = 0x0A;
    pub const UTF8_STRING: u8 = 0x0C;
    pub const SEQUENCE: u8 = 0x30; // constructed bit set
}

/// Encodes a value as DER.
pub fn encode(value: &AsnValue) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(value, &mut out);
    out
}

fn encode_into(value: &AsnValue, out: &mut Vec<u8>) {
    match value {
        AsnValue::Boolean(b) => {
            out.push(tag::BOOLEAN);
            out.push(1);
            out.push(if *b { 0xFF } else { 0x00 });
        }
        AsnValue::Integer(i) => encode_integer(tag::INTEGER, *i, out),
        AsnValue::Enumerated(i) => encode_integer(tag::ENUMERATED, *i, out),
        AsnValue::OctetString(bytes) => {
            out.push(tag::OCTET_STRING);
            encode_length(bytes.len(), out);
            out.extend_from_slice(bytes);
        }
        AsnValue::Null => {
            out.push(tag::NULL);
            out.push(0);
        }
        AsnValue::Utf8String(s) => {
            out.push(tag::UTF8_STRING);
            encode_length(s.len(), out);
            out.extend_from_slice(s.as_bytes());
        }
        AsnValue::Sequence(items) => {
            let mut inner = Vec::new();
            for item in items {
                encode_into(item, &mut inner);
            }
            out.push(tag::SEQUENCE);
            encode_length(inner.len(), out);
            out.extend_from_slice(&inner);
        }
    }
}

/// Minimal two's-complement content octets for an integer.
fn integer_bytes(i: i64) -> Vec<u8> {
    let be = i.to_be_bytes();
    // Strip redundant leading bytes: 0x00 followed by a 0-MSB byte, or
    // 0xFF followed by a 1-MSB byte.
    let mut start = 0;
    while start < 7 {
        let cur = be[start];
        let next = be[start + 1];
        let redundant = (cur == 0x00 && next & 0x80 == 0) || (cur == 0xFF && next & 0x80 != 0);
        if redundant {
            start += 1;
        } else {
            break;
        }
    }
    be[start..].to_vec()
}

fn encode_integer(tag: u8, i: i64, out: &mut Vec<u8>) {
    let content = integer_bytes(i);
    out.push(tag);
    encode_length(content.len(), out);
    out.extend_from_slice(&content);
}

/// Definite-length field: short form < 128, else minimal long form.
fn encode_length(len: usize, out: &mut Vec<u8>) {
    if len < 0x80 {
        out.push(len as u8);
    } else {
        let be = len.to_be_bytes();
        let first = be.iter().position(|&b| b != 0).unwrap_or(be.len() - 1);
        let bytes = &be[first..];
        out.push(0x80 | bytes.len() as u8);
        out.extend_from_slice(bytes);
    }
}

/// Decodes a single DER value, requiring the input to be exactly one TLV.
///
/// # Errors
///
/// Any [`Asn1Error`] decoding condition, including trailing bytes and
/// non-canonical (BER-but-not-DER) encodings.
pub fn decode(input: &[u8]) -> Result<AsnValue, Asn1Error> {
    let (value, used) = decode_prefix(input)?;
    if used != input.len() {
        return Err(Asn1Error::TrailingBytes(input.len() - used));
    }
    Ok(value)
}

/// Decodes one TLV from the front, returning `(value, bytes consumed)`.
///
/// # Errors
///
/// As for [`decode`], except trailing bytes are allowed.
pub fn decode_prefix(input: &[u8]) -> Result<(AsnValue, usize), Asn1Error> {
    if input.is_empty() {
        return Err(Asn1Error::Truncated);
    }
    let tag = input[0];
    let (len, header) = decode_length(&input[1..])?;
    let start = 1 + header;
    let end = start.checked_add(len).ok_or(Asn1Error::BadLength)?;
    if end > input.len() {
        return Err(Asn1Error::Truncated);
    }
    let content = &input[start..end];
    let value = match tag {
        tag::BOOLEAN => {
            if content.len() != 1 {
                return Err(Asn1Error::BadBoolean);
            }
            match content[0] {
                0x00 => AsnValue::Boolean(false),
                0xFF => AsnValue::Boolean(true),
                _ => return Err(Asn1Error::BadBoolean), // BER allows, DER doesn't
            }
        }
        tag::INTEGER => AsnValue::Integer(decode_integer(content)?),
        tag::ENUMERATED => AsnValue::Enumerated(decode_integer(content)?),
        tag::OCTET_STRING => AsnValue::OctetString(content.to_vec()),
        tag::NULL => {
            if !content.is_empty() {
                return Err(Asn1Error::NonCanonical("null with contents"));
            }
            AsnValue::Null
        }
        tag::UTF8_STRING => AsnValue::Utf8String(
            std::str::from_utf8(content)
                .map_err(|_| Asn1Error::BadUtf8)?
                .to_string(),
        ),
        tag::SEQUENCE => {
            let mut items = Vec::new();
            let mut pos = 0;
            while pos < content.len() {
                let (item, used) = decode_prefix(&content[pos..])?;
                items.push(item);
                pos += used;
            }
            AsnValue::Sequence(items)
        }
        other => return Err(Asn1Error::UnknownTag(other)),
    };
    Ok((value, end))
}

fn decode_length(input: &[u8]) -> Result<(usize, usize), Asn1Error> {
    let first = *input.first().ok_or(Asn1Error::Truncated)?;
    if first < 0x80 {
        return Ok((usize::from(first), 1));
    }
    let n = usize::from(first & 0x7F);
    if n == 0 {
        // Indefinite length: BER-only, DER forbids it.
        return Err(Asn1Error::NonCanonical("indefinite length"));
    }
    if n > std::mem::size_of::<usize>() || input.len() < 1 + n {
        return Err(if input.len() < 1 + n {
            Asn1Error::Truncated
        } else {
            Asn1Error::BadLength
        });
    }
    let mut len = 0usize;
    for &b in &input[1..=n] {
        len = (len << 8) | usize::from(b);
    }
    // DER minimality: long form only when short form can't express it,
    // and no leading zero octets.
    if len < 0x80 || input[1] == 0 {
        return Err(Asn1Error::NonCanonical("non-minimal length"));
    }
    Ok((len, 1 + n))
}

fn decode_integer(content: &[u8]) -> Result<i64, Asn1Error> {
    if content.is_empty() || content.len() > 8 {
        return Err(Asn1Error::BadLength);
    }
    if content.len() > 1 {
        let redundant = (content[0] == 0x00 && content[1] & 0x80 == 0)
            || (content[0] == 0xFF && content[1] & 0x80 != 0);
        if redundant {
            return Err(Asn1Error::NonCanonical("padded integer"));
        }
    }
    let negative = content[0] & 0x80 != 0;
    let mut acc: i64 = if negative { -1 } else { 0 };
    for &b in content {
        acc = (acc << 8) | i64::from(b);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn integer_known_vectors() {
        // Classic DER integer encodings.
        assert_eq!(encode(&AsnValue::Integer(0)), vec![0x02, 0x01, 0x00]);
        assert_eq!(encode(&AsnValue::Integer(127)), vec![0x02, 0x01, 0x7F]);
        assert_eq!(
            encode(&AsnValue::Integer(128)),
            vec![0x02, 0x02, 0x00, 0x80]
        );
        assert_eq!(
            encode(&AsnValue::Integer(256)),
            vec![0x02, 0x02, 0x01, 0x00]
        );
        assert_eq!(encode(&AsnValue::Integer(-128)), vec![0x02, 0x01, 0x80]);
        assert_eq!(
            encode(&AsnValue::Integer(-129)),
            vec![0x02, 0x02, 0xFF, 0x7F]
        );
    }

    #[test]
    fn boolean_and_null_vectors() {
        assert_eq!(encode(&AsnValue::Boolean(true)), vec![0x01, 0x01, 0xFF]);
        assert_eq!(encode(&AsnValue::Boolean(false)), vec![0x01, 0x01, 0x00]);
        assert_eq!(encode(&AsnValue::Null), vec![0x05, 0x00]);
    }

    #[test]
    fn long_form_length() {
        let v = AsnValue::OctetString(vec![0xAA; 200]);
        let bytes = encode(&v);
        assert_eq!(&bytes[..3], &[0x04, 0x81, 200]);
        assert_eq!(decode(&bytes).unwrap(), v);
    }

    #[test]
    fn non_canonical_inputs_rejected() {
        // BER boolean true as 0x01 — legal BER, not DER.
        assert_eq!(decode(&[0x01, 0x01, 0x01]), Err(Asn1Error::BadBoolean));
        // Padded integer 0x00 0x7F.
        assert_eq!(
            decode(&[0x02, 0x02, 0x00, 0x7F]),
            Err(Asn1Error::NonCanonical("padded integer"))
        );
        // Long-form length for a short value.
        assert_eq!(
            decode(&[0x04, 0x81, 0x01, 0xAA]),
            Err(Asn1Error::NonCanonical("non-minimal length"))
        );
        // Indefinite length.
        assert_eq!(
            decode(&[0x30, 0x80, 0x00, 0x00]),
            Err(Asn1Error::NonCanonical("indefinite length"))
        );
        // NULL with contents.
        assert_eq!(
            decode(&[0x05, 0x01, 0x00]),
            Err(Asn1Error::NonCanonical("null with contents"))
        );
    }

    #[test]
    fn truncation_and_trailing_rejected() {
        let bytes = encode(&AsnValue::Integer(300));
        assert_eq!(decode(&bytes[..2]), Err(Asn1Error::Truncated));
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(decode(&extended), Err(Asn1Error::TrailingBytes(1)));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(decode(&[0x13, 0x00]), Err(Asn1Error::UnknownTag(0x13)));
    }

    #[test]
    fn nested_sequences_roundtrip() {
        let v = AsnValue::Sequence(vec![
            AsnValue::Sequence(vec![AsnValue::Integer(1), AsnValue::Boolean(false)]),
            AsnValue::Utf8String("héllo".into()),
            AsnValue::Sequence(vec![]),
        ]);
        assert_eq!(decode(&encode(&v)).unwrap(), v);
    }

    #[test]
    fn bad_utf8_rejected() {
        assert_eq!(decode(&[0x0C, 0x01, 0xFF]), Err(Asn1Error::BadUtf8));
    }

    fn arb_value() -> impl Strategy<Value = AsnValue> {
        let leaf = prop_oneof![
            any::<bool>().prop_map(AsnValue::Boolean),
            any::<i64>().prop_map(AsnValue::Integer),
            any::<i64>().prop_map(AsnValue::Enumerated),
            proptest::collection::vec(any::<u8>(), 0..64).prop_map(AsnValue::OctetString),
            Just(AsnValue::Null),
            "[a-zA-Z0-9 ]{0,24}".prop_map(AsnValue::Utf8String),
        ];
        leaf.prop_recursive(3, 64, 8, |inner| {
            proptest::collection::vec(inner, 0..6).prop_map(AsnValue::Sequence)
        })
    }

    proptest! {
        /// encode ∘ decode = id over arbitrary nested values.
        #[test]
        fn der_roundtrip(v in arb_value()) {
            prop_assert_eq!(decode(&encode(&v)).unwrap(), v);
        }

        /// DER is canonical: equal values encode identically, and the
        /// encoding decodes to an equal value (determinism).
        #[test]
        fn der_deterministic(v in arb_value()) {
            prop_assert_eq!(encode(&v), encode(&v.clone()));
        }

        /// Integer contents are minimal: re-encoding a decoded integer
        /// reproduces the input bytes exactly.
        #[test]
        fn integer_encoding_minimal(i in any::<i64>()) {
            let bytes = encode(&AsnValue::Integer(i));
            let decoded = decode(&bytes).unwrap();
            prop_assert_eq!(encode(&decoded), bytes);
        }
    }
}
