//! Schema layer: abstract-syntax types with constraints.
//!
//! An [`AsnType`] checks that an [`AsnValue`] has the declared shape and
//! satisfies size/range/enumeration constraints — the full expressive
//! power of the notation the paper discusses in §2.1. Note what is
//! *absent* (deliberately, mirroring ASN.1): no cross-field constraints,
//! no checksums, no behaviour. The comparison test against
//! `netdsl-core::packet` in `tests/` makes the gap concrete.

use crate::error::Asn1Error;
use crate::value::AsnValue;

/// An ASN.1-style type with optional constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsnType {
    /// BOOLEAN.
    Boolean,
    /// INTEGER, optionally range-constrained (inclusive).
    Integer {
        /// Minimum allowed value, if constrained.
        min: Option<i64>,
        /// Maximum allowed value, if constrained.
        max: Option<i64>,
    },
    /// OCTET STRING, optionally size-constrained (bytes, inclusive).
    OctetString {
        /// Minimum size, if constrained.
        min_len: Option<usize>,
        /// Maximum size, if constrained.
        max_len: Option<usize>,
    },
    /// NULL.
    Null,
    /// ENUMERATED over the listed discriminants.
    Enumerated {
        /// The allowed discriminants.
        allowed: Vec<i64>,
    },
    /// UTF8String, optionally size-constrained (bytes).
    Utf8String {
        /// Maximum size, if constrained.
        max_len: Option<usize>,
    },
    /// SEQUENCE with named, ordered components.
    Sequence {
        /// `(component name, component type)` in order.
        fields: Vec<(String, AsnType)>,
    },
    /// SEQUENCE OF a homogeneous element type.
    SequenceOf {
        /// The element type.
        element: Box<AsnType>,
        /// Maximum element count, if constrained.
        max_len: Option<usize>,
    },
}

impl AsnType {
    /// Unconstrained INTEGER.
    pub fn integer() -> AsnType {
        AsnType::Integer {
            min: None,
            max: None,
        }
    }

    /// Range-constrained INTEGER.
    pub fn integer_in(min: i64, max: i64) -> AsnType {
        AsnType::Integer {
            min: Some(min),
            max: Some(max),
        }
    }

    /// Unconstrained OCTET STRING.
    pub fn octets() -> AsnType {
        AsnType::OctetString {
            min_len: None,
            max_len: None,
        }
    }

    /// Checks `value` against this type.
    ///
    /// # Errors
    ///
    /// [`Asn1Error::SchemaMismatch`] on shape errors,
    /// [`Asn1Error::ConstraintViolation`] on constraint failures.
    pub fn check(&self, value: &AsnValue) -> Result<(), Asn1Error> {
        let mismatch = |expected: &str| Asn1Error::SchemaMismatch {
            expected: expected.to_string(),
            found: value.type_name().to_string(),
        };
        match (self, value) {
            (AsnType::Boolean, AsnValue::Boolean(_)) => Ok(()),
            (AsnType::Integer { min, max }, AsnValue::Integer(i)) => {
                if min.is_some_and(|m| *i < m) || max.is_some_and(|m| *i > m) {
                    return Err(Asn1Error::ConstraintViolation(format!(
                        "integer {i} outside [{min:?}, {max:?}]"
                    )));
                }
                Ok(())
            }
            (AsnType::OctetString { min_len, max_len }, AsnValue::OctetString(bytes)) => {
                if min_len.is_some_and(|m| bytes.len() < m)
                    || max_len.is_some_and(|m| bytes.len() > m)
                {
                    return Err(Asn1Error::ConstraintViolation(format!(
                        "octet string length {} outside [{min_len:?}, {max_len:?}]",
                        bytes.len()
                    )));
                }
                Ok(())
            }
            (AsnType::Null, AsnValue::Null) => Ok(()),
            (AsnType::Enumerated { allowed }, AsnValue::Enumerated(i)) => {
                if allowed.contains(i) {
                    Ok(())
                } else {
                    Err(Asn1Error::ConstraintViolation(format!(
                        "enumerated {i} not in {allowed:?}"
                    )))
                }
            }
            (AsnType::Utf8String { max_len }, AsnValue::Utf8String(s)) => {
                if max_len.is_some_and(|m| s.len() > m) {
                    return Err(Asn1Error::ConstraintViolation(format!(
                        "string length {} exceeds {max_len:?}",
                        s.len()
                    )));
                }
                Ok(())
            }
            (AsnType::Sequence { fields }, AsnValue::Sequence(items)) => {
                if fields.len() != items.len() {
                    return Err(Asn1Error::SchemaMismatch {
                        expected: format!("SEQUENCE of {} components", fields.len()),
                        found: format!("SEQUENCE of {} components", items.len()),
                    });
                }
                for ((name, ty), item) in fields.iter().zip(items) {
                    ty.check(item).map_err(|e| match e {
                        Asn1Error::SchemaMismatch { expected, found } => {
                            Asn1Error::SchemaMismatch {
                                expected: format!("{name}: {expected}"),
                                found,
                            }
                        }
                        other => other,
                    })?;
                }
                Ok(())
            }
            (AsnType::SequenceOf { element, max_len }, AsnValue::Sequence(items)) => {
                if max_len.is_some_and(|m| items.len() > m) {
                    return Err(Asn1Error::ConstraintViolation(format!(
                        "sequence-of length {} exceeds {max_len:?}",
                        items.len()
                    )));
                }
                items.iter().try_for_each(|i| element.check(i))
            }
            (AsnType::Boolean, _) => Err(mismatch("BOOLEAN")),
            (AsnType::Integer { .. }, _) => Err(mismatch("INTEGER")),
            (AsnType::OctetString { .. }, _) => Err(mismatch("OCTET STRING")),
            (AsnType::Null, _) => Err(mismatch("NULL")),
            (AsnType::Enumerated { .. }, _) => Err(mismatch("ENUMERATED")),
            (AsnType::Utf8String { .. }, _) => Err(mismatch("UTF8String")),
            (AsnType::Sequence { .. }, _) | (AsnType::SequenceOf { .. }, _) => {
                Err(mismatch("SEQUENCE"))
            }
        }
    }

    /// Decodes DER bytes **and** checks them against this type in one
    /// step — the closest ASN.1 comes to validated decoding.
    ///
    /// # Errors
    ///
    /// DER decoding errors, then schema errors.
    pub fn decode_checked(&self, bytes: &[u8]) -> Result<AsnValue, Asn1Error> {
        let v = crate::der::decode(bytes)?;
        self.check(&v)?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::der;

    fn message_type() -> AsnType {
        AsnType::Sequence {
            fields: vec![
                ("version".into(), AsnType::integer_in(1, 3)),
                (
                    "kind".into(),
                    AsnType::Enumerated {
                        allowed: vec![0, 1, 2],
                    },
                ),
                (
                    "payload".into(),
                    AsnType::OctetString {
                        min_len: None,
                        max_len: Some(512),
                    },
                ),
            ],
        }
    }

    fn good_value() -> AsnValue {
        AsnValue::Sequence(vec![
            AsnValue::Integer(2),
            AsnValue::Enumerated(1),
            AsnValue::OctetString(vec![9; 16]),
        ])
    }

    #[test]
    fn schema_accepts_conforming_values() {
        message_type().check(&good_value()).unwrap();
        let bytes = der::encode(&good_value());
        assert_eq!(message_type().decode_checked(&bytes).unwrap(), good_value());
    }

    #[test]
    fn range_and_enum_constraints_enforced() {
        let mut v = good_value();
        if let AsnValue::Sequence(items) = &mut v {
            items[0] = AsnValue::Integer(9); // version out of range
        }
        assert!(matches!(
            message_type().check(&v),
            Err(Asn1Error::ConstraintViolation(_))
        ));

        let mut v2 = good_value();
        if let AsnValue::Sequence(items) = &mut v2 {
            items[1] = AsnValue::Enumerated(7);
        }
        assert!(matches!(
            message_type().check(&v2),
            Err(Asn1Error::ConstraintViolation(_))
        ));
    }

    #[test]
    fn shape_mismatches_name_the_component() {
        let mut v = good_value();
        if let AsnValue::Sequence(items) = &mut v {
            items[2] = AsnValue::Null;
        }
        match message_type().check(&v) {
            Err(Asn1Error::SchemaMismatch { expected, .. }) => {
                assert!(expected.contains("payload"), "{expected}");
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn arity_mismatch_detected() {
        let v = AsnValue::Sequence(vec![AsnValue::Integer(1)]);
        assert!(matches!(
            message_type().check(&v),
            Err(Asn1Error::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn sequence_of_homogeneous() {
        let ty = AsnType::SequenceOf {
            element: Box::new(AsnType::integer_in(0, 10)),
            max_len: Some(3),
        };
        ty.check(&AsnValue::Sequence(vec![
            AsnValue::Integer(1),
            AsnValue::Integer(2),
        ]))
        .unwrap();
        assert!(ty
            .check(&AsnValue::Sequence(vec![AsnValue::Integer(11)]))
            .is_err());
        assert!(ty
            .check(&AsnValue::Sequence(vec![
                AsnValue::Integer(0),
                AsnValue::Integer(0),
                AsnValue::Integer(0),
                AsnValue::Integer(0)
            ]))
            .is_err());
    }

    #[test]
    fn string_length_cap() {
        let ty = AsnType::Utf8String { max_len: Some(4) };
        ty.check(&AsnValue::Utf8String("abcd".into())).unwrap();
        assert!(ty.check(&AsnValue::Utf8String("abcde".into())).is_err());
    }

    /// What ASN.1 *cannot* say (the paper's §2.2 gap): a checksum field
    /// constrained to equal a computation over its siblings. The best a
    /// schema can do is type the field; a forged checksum passes.
    #[test]
    fn asn1_cannot_express_cross_field_constraints() {
        let ty = AsnType::Sequence {
            fields: vec![
                ("seq".into(), AsnType::integer_in(0, 255)),
                ("payload".into(), AsnType::octets()),
                ("checksum".into(), AsnType::integer_in(0, 255)),
            ],
        };
        let forged = AsnValue::Sequence(vec![
            AsnValue::Integer(7),
            AsnValue::OctetString(b"hello".to_vec()),
            AsnValue::Integer(0), // wrong checksum — schema cannot know
        ]);
        assert!(
            ty.check(&forged).is_ok(),
            "the forged checksum passes the schema — exactly the gap the DSL closes"
        );
    }
}
