//! Mamdani fuzzy-inference controller for QoS adaptation.
//!
//! Reference \[1\] of the paper (Bhatti & Knight, *Enabling QoS adaptation
//! decisions for Internet applications*) drives media-rate adaptation
//! from fuzzy assessments of network state. This module implements the
//! machinery: triangular membership functions, a rule base with min/max
//! (Mamdani) inference, and centroid defuzzification — then packages the
//! standard loss/delay → rate-multiplier controller as [`MediaAdapter`].

use std::collections::BTreeMap;

/// A triangular fuzzy set over `f64`, defined by `(left, peak, right)`.
///
/// Membership rises linearly from `left` to 1 at `peak` and falls back to
/// 0 at `right`. Sets at the edge of the universe use `left == peak` (or
/// `peak == right`) for a shoulder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzySet {
    left: f64,
    peak: f64,
    right: f64,
}

impl FuzzySet {
    /// Creates a triangular set.
    ///
    /// # Panics
    ///
    /// Panics unless `left <= peak <= right` (definition bug).
    pub fn triangle(left: f64, peak: f64, right: f64) -> Self {
        assert!(
            left <= peak && peak <= right,
            "triangle must satisfy left <= peak <= right"
        );
        FuzzySet { left, peak, right }
    }

    /// Membership degree of `x`, in `[0, 1]`.
    pub fn membership(&self, x: f64) -> f64 {
        if x < self.left || x > self.right {
            0.0
        } else if x == self.peak {
            1.0
        } else if x < self.peak {
            if self.peak == self.left {
                1.0
            } else {
                (x - self.left) / (self.peak - self.left)
            }
        } else if self.right == self.peak {
            1.0
        } else {
            (self.right - x) / (self.right - self.peak)
        }
    }

    /// The peak (used as the set's representative value in centroid
    /// defuzzification of the rule consequents).
    pub fn peak(&self) -> f64 {
        self.peak
    }
}

/// One inference rule: IF every `(input, set)` pair holds THEN the output
/// is `consequent` (a named output set).
#[derive(Debug, Clone)]
pub struct Rule {
    antecedents: Vec<(String, String)>,
    consequent: String,
}

impl Rule {
    /// Builds a rule from `(input variable, set name)` antecedents and an
    /// output set name.
    pub fn new(antecedents: &[(&str, &str)], consequent: &str) -> Self {
        Rule {
            antecedents: antecedents
                .iter()
                .map(|(v, s)| (v.to_string(), s.to_string()))
                .collect(),
            consequent: consequent.to_string(),
        }
    }
}

/// A Mamdani fuzzy controller: input variables with labelled sets, output
/// sets, and a rule base.
#[derive(Debug, Clone, Default)]
pub struct FuzzyController {
    inputs: BTreeMap<String, BTreeMap<String, FuzzySet>>,
    outputs: BTreeMap<String, FuzzySet>,
    rules: Vec<Rule>,
}

impl FuzzyController {
    /// Creates an empty controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a labelled set for an input variable.
    pub fn input_set(&mut self, var: &str, label: &str, set: FuzzySet) -> &mut Self {
        self.inputs
            .entry(var.to_string())
            .or_default()
            .insert(label.to_string(), set);
        self
    }

    /// Declares a labelled output set.
    pub fn output_set(&mut self, label: &str, set: FuzzySet) -> &mut Self {
        self.outputs.insert(label.to_string(), set);
        self
    }

    /// Appends a rule.
    pub fn rule(&mut self, rule: Rule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Runs inference: fuzzify `inputs`, fire every rule at the strength
    /// of its weakest antecedent (min), aggregate per output set (max),
    /// and defuzzify by the weighted centroid of output-set peaks.
    ///
    /// Returns `None` when no rule fires at all (inputs outside every
    /// set's support) — callers choose their own fallback.
    pub fn evaluate(&self, inputs: &BTreeMap<String, f64>) -> Option<f64> {
        let mut strengths: BTreeMap<&str, f64> = BTreeMap::new();
        for rule in &self.rules {
            let mut strength = f64::INFINITY;
            for (var, label) in &rule.antecedents {
                let set = self.inputs.get(var)?.get(label)?;
                let x = *inputs.get(var)?;
                strength = strength.min(set.membership(x));
            }
            if strength.is_finite() && strength > 0.0 {
                let cur = strengths.entry(rule.consequent.as_str()).or_insert(0.0);
                *cur = cur.max(strength);
            }
        }
        if strengths.is_empty() {
            return None;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (label, s) in strengths {
            let peak = self.outputs.get(label)?.peak();
            num += peak * s;
            den += s;
        }
        (den > 0.0).then_some(num / den)
    }
}

/// The packaged media-stream adaptor of experiment E7: observes loss
/// ratio and normalised queueing delay, outputs a sending-rate
/// multiplier in roughly `[0.5, 1.5]`.
#[derive(Debug, Clone)]
pub struct MediaAdapter {
    controller: FuzzyController,
    /// Current rate, adapted multiplicatively.
    rate: f64,
    min_rate: f64,
    max_rate: f64,
}

impl MediaAdapter {
    /// Creates the standard adaptor with the given initial rate and
    /// clamping bounds.
    pub fn new(initial_rate: f64, min_rate: f64, max_rate: f64) -> Self {
        let mut c = FuzzyController::new();
        // Loss ratio universe [0, 1].
        c.input_set("loss", "low", FuzzySet::triangle(0.0, 0.0, 0.05));
        c.input_set("loss", "medium", FuzzySet::triangle(0.02, 0.10, 0.25));
        c.input_set("loss", "high", FuzzySet::triangle(0.15, 1.0, 1.0));
        // Normalised delay universe [0, 1] (measured RTT / nominal RTT, capped).
        c.input_set("delay", "low", FuzzySet::triangle(0.0, 0.0, 0.4));
        c.input_set("delay", "medium", FuzzySet::triangle(0.3, 0.5, 0.8));
        c.input_set("delay", "high", FuzzySet::triangle(0.6, 1.0, 1.0));
        // Output: rate multiplier.
        c.output_set("cut", FuzzySet::triangle(0.4, 0.5, 0.6));
        c.output_set("reduce", FuzzySet::triangle(0.7, 0.8, 0.9));
        c.output_set("hold", FuzzySet::triangle(0.95, 1.0, 1.05));
        c.output_set("grow", FuzzySet::triangle(1.1, 1.25, 1.4));
        // Rule base (the conservative additive-increase shape of [1]).
        c.rule(Rule::new(&[("loss", "high")], "cut"));
        c.rule(Rule::new(&[("loss", "medium"), ("delay", "high")], "cut"));
        c.rule(Rule::new(
            &[("loss", "medium"), ("delay", "medium")],
            "reduce",
        ));
        c.rule(Rule::new(&[("loss", "medium"), ("delay", "low")], "reduce"));
        c.rule(Rule::new(&[("loss", "low"), ("delay", "high")], "reduce"));
        c.rule(Rule::new(&[("loss", "low"), ("delay", "medium")], "hold"));
        c.rule(Rule::new(&[("loss", "low"), ("delay", "low")], "grow"));
        MediaAdapter {
            controller: c,
            rate: initial_rate,
            min_rate,
            max_rate,
        }
    }

    /// Current sending rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Feeds one observation window; returns the new rate.
    pub fn observe(&mut self, loss_ratio: f64, delay_norm: f64) -> f64 {
        let mut inputs = BTreeMap::new();
        inputs.insert("loss".to_string(), loss_ratio.clamp(0.0, 1.0));
        inputs.insert("delay".to_string(), delay_norm.clamp(0.0, 1.0));
        if let Some(mult) = self.controller.evaluate(&inputs) {
            self.rate = (self.rate * mult).clamp(self.min_rate, self.max_rate);
        }
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_membership_shape() {
        let s = FuzzySet::triangle(0.0, 0.5, 1.0);
        assert_eq!(s.membership(0.5), 1.0);
        assert_eq!(s.membership(0.0), 0.0);
        assert_eq!(s.membership(1.0), 0.0);
        assert!((s.membership(0.25) - 0.5).abs() < 1e-12);
        assert_eq!(s.membership(-0.1), 0.0);
        assert_eq!(s.membership(1.1), 0.0);
    }

    #[test]
    fn shoulder_sets_saturate() {
        let lo = FuzzySet::triangle(0.0, 0.0, 0.5);
        assert_eq!(lo.membership(0.0), 1.0);
        let hi = FuzzySet::triangle(0.5, 1.0, 1.0);
        assert_eq!(hi.membership(1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "triangle")]
    fn inverted_triangle_panics() {
        FuzzySet::triangle(1.0, 0.5, 0.0);
    }

    #[test]
    fn controller_interpolates_between_rules() {
        let mut c = FuzzyController::new();
        c.input_set("x", "low", FuzzySet::triangle(0.0, 0.0, 1.0));
        c.input_set("x", "high", FuzzySet::triangle(0.0, 1.0, 1.0));
        c.output_set("small", FuzzySet::triangle(0.0, 0.0, 0.1));
        c.output_set("big", FuzzySet::triangle(0.9, 1.0, 1.0));
        c.rule(Rule::new(&[("x", "low")], "small"));
        c.rule(Rule::new(&[("x", "high")], "big"));
        let eval = |x: f64| {
            let mut m = BTreeMap::new();
            m.insert("x".to_string(), x);
            c.evaluate(&m).unwrap()
        };
        assert!(eval(0.0) < 0.01);
        assert!(eval(1.0) > 0.99);
        let mid = eval(0.5);
        assert!((0.4..0.6).contains(&mid), "midpoint blends: {mid}");
        // Monotone in x.
        assert!(eval(0.2) < eval(0.8));
    }

    #[test]
    fn no_matching_rule_returns_none() {
        let mut c = FuzzyController::new();
        c.input_set("x", "low", FuzzySet::triangle(0.0, 0.0, 0.2));
        c.output_set("out", FuzzySet::triangle(0.0, 0.5, 1.0));
        c.rule(Rule::new(&[("x", "low")], "out"));
        let mut m = BTreeMap::new();
        m.insert("x".to_string(), 0.9);
        assert_eq!(c.evaluate(&m), None);
    }

    #[test]
    fn adapter_cuts_rate_under_loss() {
        let mut a = MediaAdapter::new(100.0, 10.0, 200.0);
        let r = a.observe(0.5, 0.2); // heavy loss
        assert!(r < 60.0, "rate should be cut hard: {r}");
    }

    #[test]
    fn adapter_grows_rate_on_clean_network() {
        let mut a = MediaAdapter::new(100.0, 10.0, 200.0);
        let r = a.observe(0.0, 0.1);
        assert!(r > 110.0, "clean network should grow rate: {r}");
    }

    #[test]
    fn adapter_holds_on_moderate_delay() {
        let mut a = MediaAdapter::new(100.0, 10.0, 200.0);
        let r = a.observe(0.0, 0.5);
        assert!((95.0..110.0).contains(&r), "hold region: {r}");
    }

    #[test]
    fn adapter_respects_bounds() {
        let mut a = MediaAdapter::new(100.0, 50.0, 150.0);
        for _ in 0..20 {
            a.observe(0.9, 0.9);
        }
        assert_eq!(a.rate(), 50.0, "clamped at min");
        for _ in 0..40 {
            a.observe(0.0, 0.0);
        }
        assert_eq!(a.rate(), 150.0, "clamped at max");
    }

    #[test]
    fn adaptation_converges_not_oscillates_under_stable_conditions() {
        let mut a = MediaAdapter::new(100.0, 10.0, 400.0);
        let mut last = a.rate();
        for _ in 0..50 {
            last = a.observe(0.04, 0.45); // mild congestion
        }
        // After settling, consecutive updates stay close.
        let next = a.observe(0.04, 0.45);
        assert!(
            (next - last).abs() / last < 0.15,
            "stable input should not oscillate: {last} → {next}"
        );
    }
}
