//! Trust-weighted path selection over untrusted relays (§1.1, ref \[12\]).
//!
//! Rogers & Bhatti's dependable-communication mechanism learns which
//! relay paths forward honestly by observing end-to-end outcomes, without
//! assuming any relay is trustworthy a priori. [`TrustTable`] implements
//! the learner: per-path beta-style success/failure counts with
//! exponential decay (so compromised-then-repaired relays are
//! re-discovered), and ε-greedy selection between exploiting the most
//! trusted path and exploring others.
//!
//! [`run_relay_session`] is the experiment E9 harness: `k` disjoint relay
//! paths, a chosen fraction compromised (modelled as heavy loss on the
//! relay's outgoing links), messages sent one per round with an
//! end-to-end ack; delivery ratio under trust-based vs random vs fixed
//! selection.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use netdsl_netsim::{Event, LinkConfig, NodeId, Simulator, Topology};

/// Per-path trust learner.
#[derive(Debug, Clone)]
pub struct TrustTable {
    success: Vec<f64>,
    failure: Vec<f64>,
    epsilon: f64,
    decay: f64,
}

impl TrustTable {
    /// Creates a table over `paths` alternatives with exploration rate
    /// `epsilon` and per-update decay `decay` (1.0 = never forget).
    ///
    /// # Panics
    ///
    /// Panics when `paths == 0` or the rates are outside `[0, 1]`.
    pub fn new(paths: usize, epsilon: f64, decay: f64) -> Self {
        assert!(paths > 0, "need at least one path");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon in [0,1]");
        assert!((0.0..=1.0).contains(&decay), "decay in [0,1]");
        TrustTable {
            success: vec![1.0; paths], // Laplace prior: everyone starts equal
            failure: vec![1.0; paths],
            epsilon,
            decay,
        }
    }

    /// Current trust score of a path: expected success probability.
    pub fn trust(&self, path: usize) -> f64 {
        self.success[path] / (self.success[path] + self.failure[path])
    }

    /// Picks a path: with probability `epsilon` a uniformly random one
    /// (exploration), otherwise the most trusted (exploitation).
    pub fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        if rng.random_bool(self.epsilon) {
            rng.random_range(0..self.success.len())
        } else {
            // argmax by trust; ties to the lowest index (deterministic).
            let mut best = 0;
            for i in 1..self.success.len() {
                if self.trust(i) > self.trust(best) {
                    best = i;
                }
            }
            best
        }
    }

    /// Records an end-to-end outcome for `path`.
    pub fn record(&mut self, path: usize, delivered: bool) {
        for i in 0..self.success.len() {
            self.success[i] *= self.decay;
            self.failure[i] *= self.decay;
        }
        if delivered {
            self.success[path] += 1.0;
        } else {
            self.failure[path] += 1.0;
        }
    }

    /// Number of alternatives.
    pub fn len(&self) -> usize {
        self.success.len()
    }

    /// `true` if the table is over zero paths (unreachable by
    /// construction; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.success.is_empty()
    }
}

/// Path-selection policies compared in experiment E9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Learn trust scores, ε-greedy.
    TrustLearning,
    /// Uniformly random path each round.
    Random,
    /// Always path 0.
    Fixed,
}

/// Result of one relay session.
#[derive(Debug, Clone, PartialEq)]
pub struct RelayOutcome {
    /// Messages delivered end-to-end (acked).
    pub delivered: u64,
    /// Messages sent.
    pub sent: u64,
    /// Virtual ticks the whole session consumed.
    pub elapsed: u64,
    /// Final trust score per path (empty for non-learning policies).
    pub trust: Vec<f64>,
}

impl RelayOutcome {
    /// Delivery ratio in `[0, 1]`.
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }
}

/// Runs a source-routed relay session: `k` disjoint paths of `hops`
/// relays each; `compromised` lists path indices whose relays drop
/// traffic (loss `0.9` on their outgoing links); `rounds` messages are
/// sent under `policy`, each acknowledged end-to-end on the reverse path.
/// All honest links are clean unit-delay; use
/// [`run_relay_session_over`] to impair them.
pub fn run_relay_session(
    k: usize,
    hops: usize,
    compromised: &[usize],
    policy: Policy,
    rounds: u64,
    seed: u64,
) -> RelayOutcome {
    run_relay_session_over(
        k,
        hops,
        LinkConfig::reliable(1),
        compromised,
        policy,
        rounds,
        seed,
    )
}

/// [`run_relay_session`] with every (honest) link carrying the given
/// impairment configuration — the campaign layer's link axis.
/// Compromised relays still override their outgoing links with the 90%
/// drop process.
pub fn run_relay_session_over(
    k: usize,
    hops: usize,
    link: LinkConfig,
    compromised: &[usize],
    policy: Policy,
    rounds: u64,
    seed: u64,
) -> RelayOutcome {
    let mut sim = Simulator::new(seed);
    let (topo, src, dst, relay_paths) = Topology::parallel_paths(&mut sim, k, hops, link);

    // Compromise: every outgoing link of every relay on the listed paths
    // becomes 90% lossy (a subverted forwarder that occasionally lets a
    // probe through — the hard case for naive probing, per [12]).
    for &p in compromised {
        for &relay in &relay_paths[p] {
            for next in topo.neighbours(relay) {
                if let Some(link) = topo.link(relay, next) {
                    sim.reconfigure_link(link, LinkConfig::lossy(1, 0.9));
                }
            }
        }
    }

    // Full node-sequence for each path, forward and reverse.
    let forward: Vec<Vec<NodeId>> = relay_paths
        .iter()
        .map(|relays| {
            let mut p = vec![src];
            p.extend(relays);
            p.push(dst);
            p
        })
        .collect();

    let mut table = TrustTable::new(k, 0.1, 0.995);
    let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x5eed);
    let mut delivered = 0u64;

    for round in 0..rounds {
        let path = match policy {
            Policy::TrustLearning => table.choose(&mut rng),
            Policy::Random => rng.random_range(0..k),
            Policy::Fixed => 0,
        };
        // Source-route the message along the chosen path, then the ack
        // back along the reverse. Frames carry (round, remaining hops).
        let ok = route_once(&mut sim, &topo, &forward[path], round);
        if ok {
            delivered += 1;
        }
        if policy == Policy::TrustLearning {
            table.record(path, ok);
        }
    }

    RelayOutcome {
        delivered,
        sent: rounds,
        elapsed: sim.now(),
        trust: if policy == Policy::TrustLearning {
            (0..k).map(|i| table.trust(i)).collect()
        } else {
            Vec::new()
        },
    }
}

/// Frame direction marker: travelling towards the destination.
const DIR_FWD: u8 = 0;
/// Frame direction marker: the ack travelling back to the source.
const DIR_BACK: u8 = 1;

/// Sends one message along `path` and its ack back; `true` if the ack
/// returned to the source. Hop-by-hop source-routed forwarding runs
/// inline on the simulator's event loop; frames carry `(tag, direction)`.
fn route_once(sim: &mut Simulator, topo: &Topology, path: &[NodeId], round: u64) -> bool {
    let mut frame = round.to_be_bytes().to_vec();
    frame.push(DIR_FWD);
    let first_link = topo.link(path[0], path[1]).expect("path is connected");
    sim.send(first_link, frame);

    let mut acked = false;
    while let Some(ev) = sim.step() {
        let Event::Frame { node, payload, .. } = ev else {
            continue;
        };
        if payload.len() != 9 {
            continue; // corrupted beyond recognition
        }
        let tag = u64::from_be_bytes(payload[..8].try_into().expect("len checked"));
        if tag != round {
            continue; // stale duplicate from an earlier round
        }
        let dir = payload[8];
        let Some(i) = path.iter().position(|&n| n == node) else {
            continue;
        };
        let last = path.len() - 1;
        match (dir, i) {
            (DIR_BACK, 0) => {
                acked = true; // end-to-end ack back at the source
            }
            (DIR_FWD, i) if i == last => {
                // Destination: turn the message around.
                let mut back_frame = payload.clone();
                back_frame[8] = DIR_BACK;
                let back = topo.link(path[i], path[i - 1]).expect("reverse link");
                sim.send(back, back_frame);
            }
            (DIR_FWD, i) if i > 0 => {
                let next = topo.link(path[i], path[i + 1]).expect("forward link");
                sim.send(next, payload);
            }
            (DIR_BACK, i) if i > 0 && i < last => {
                let prev = topo.link(path[i], path[i - 1]).expect("reverse link");
                sim.send(prev, payload);
            }
            _ => {}
        }
        if acked {
            break;
        }
    }
    acked
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn trust_updates_move_scores() {
        let mut t = TrustTable::new(3, 0.0, 1.0);
        assert!((t.trust(0) - 0.5).abs() < 1e-12, "prior is 0.5");
        for _ in 0..10 {
            t.record(0, true);
            t.record(1, false);
        }
        assert!(t.trust(0) > 0.85);
        assert!(t.trust(1) < 0.15);
        assert!(
            (t.trust(2) - 0.5).abs() < 1e-12,
            "untouched path keeps prior"
        );
    }

    #[test]
    fn greedy_choice_picks_most_trusted() {
        let mut t = TrustTable::new(3, 0.0, 1.0);
        for _ in 0..5 {
            t.record(2, true);
        }
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(t.choose(&mut rng), 2);
        }
    }

    #[test]
    fn epsilon_one_is_uniform_exploration() {
        let t = TrustTable::new(4, 1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[t.choose(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all paths explored");
    }

    #[test]
    fn decay_forgets_old_evidence() {
        let mut t = TrustTable::new(2, 0.0, 0.9);
        for _ in 0..20 {
            t.record(0, false);
        }
        let distrusted = t.trust(0);
        for _ in 0..40 {
            t.record(0, true);
        }
        assert!(t.trust(0) > 0.7, "repaired path regains trust");
        assert!(t.trust(0) > distrusted);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_paths_panics() {
        TrustTable::new(0, 0.1, 1.0);
    }

    #[test]
    fn clean_network_delivers_everything() {
        let out = run_relay_session(3, 2, &[], Policy::Fixed, 50, 1);
        assert_eq!(out.delivered, 50);
        assert!((out.delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_policy_on_compromised_path_mostly_fails() {
        // Path 0 compromised, fixed policy insists on it: three 90%-lossy
        // hops each way make end-to-end success rare.
        let out = run_relay_session(3, 2, &[0], Policy::Fixed, 100, 2);
        assert!(
            out.delivery_ratio() < 0.15,
            "ratio {}",
            out.delivery_ratio()
        );
    }

    #[test]
    fn trust_learning_avoids_the_compromised_path() {
        let out = run_relay_session(3, 2, &[0], Policy::TrustLearning, 200, 3);
        assert!(
            out.delivery_ratio() > 0.8,
            "learner should route around: {}",
            out.delivery_ratio()
        );
        assert!(
            out.trust[0] < out.trust[1] && out.trust[0] < out.trust[2],
            "compromised path least trusted: {:?}",
            out.trust
        );
    }

    #[test]
    fn trust_learning_beats_random_under_heavy_compromise() {
        // 3 of 4 paths compromised.
        let learn = run_relay_session(4, 2, &[0, 1, 2], Policy::TrustLearning, 300, 4);
        let random = run_relay_session(4, 2, &[0, 1, 2], Policy::Random, 300, 4);
        assert!(
            learn.delivery_ratio() > random.delivery_ratio() + 0.2,
            "learning {} vs random {}",
            learn.delivery_ratio(),
            random.delivery_ratio()
        );
    }

    #[test]
    fn all_paths_compromised_fails_for_everyone() {
        let out = run_relay_session(2, 2, &[0, 1], Policy::TrustLearning, 100, 5);
        assert!(out.delivery_ratio() < 0.2);
    }
}
