//! Adaptive retransmission timers (the paper's §1.1 "tuning protocol
//! operation", ref \[5\]).
//!
//! [`RtoEstimator`] is the RFC 6298 estimator: smoothed RTT + 4× RTT
//! variance, Karn's algorithm (samples from retransmitted packets are
//! discarded — they are ambiguous), and exponential backoff on timeout.
//! Experiment E8 runs a stop-and-wait transfer with this estimator
//! against fixed timers across drifting RTTs, measuring retransmission
//! overhead and completion time.

use netdsl_netsim::{RetransmitPolicy, Tick};
use netdsl_obs::Counter;

/// Exponential backoffs applied by adaptive ARQ timers (never bumped
/// under [`RetransmitPolicy::Fixed`], whose timers are constant).
static RTO_BACKOFFS: Counter = Counter::new("arq.rto_backoffs");

/// RFC 6298-style retransmission-timeout estimator over virtual ticks.
#[derive(Debug, Clone, PartialEq)]
pub struct RtoEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    rto: f64,
    min_rto: f64,
    max_rto: f64,
    backoff: u32,
}

impl RtoEstimator {
    /// Creates an estimator with an initial RTO and clamping bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are inverted or non-positive.
    pub fn new(initial_rto: Tick, min_rto: Tick, max_rto: Tick) -> Self {
        assert!(min_rto > 0 && min_rto <= max_rto, "invalid RTO bounds");
        RtoEstimator {
            srtt: None,
            rttvar: 0.0,
            rto: (initial_rto as f64).clamp(min_rto as f64, max_rto as f64),
            min_rto: min_rto as f64,
            max_rto: max_rto as f64,
            backoff: 0,
        }
    }

    /// Current retransmission timeout (with any active backoff applied).
    pub fn rto(&self) -> Tick {
        let backed = self.rto * f64::from(1u32 << self.backoff.min(16));
        backed.clamp(self.min_rto, self.max_rto).round() as Tick
    }

    /// Smoothed RTT estimate, if any sample has been accepted.
    pub fn srtt(&self) -> Option<Tick> {
        self.srtt.map(|s| s.round() as Tick)
    }

    /// Feeds an RTT sample from a packet that was transmitted **once**
    /// (Karn's algorithm: call [`RtoEstimator::on_ambiguous_sample`] for
    /// retransmitted packets instead).
    pub fn on_sample(&mut self, rtt: Tick) {
        const ALPHA: f64 = 1.0 / 8.0;
        const BETA: f64 = 1.0 / 4.0;
        let r = rtt as f64;
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar = (1.0 - BETA) * self.rttvar + BETA * (srtt - r).abs();
                self.srtt = Some((1.0 - ALPHA) * srtt + ALPHA * r);
            }
        }
        self.rto = (self.srtt.expect("just set") + (4.0 * self.rttvar).max(1.0))
            .clamp(self.min_rto, self.max_rto);
        self.backoff = 0;
    }

    /// A sample from a retransmitted packet: discarded (ambiguous). Per
    /// Karn's algorithm the backoff is **retained** until a sample from an
    /// unretransmitted packet arrives — clearing it here would re-trigger
    /// the spurious-retransmission loop the backoff just escaped.
    pub fn on_ambiguous_sample(&mut self) {
        // Deliberately no-op; kept as an explicit API so call sites
        // document where Karn's discard happens.
    }

    /// A retransmission timeout fired: back off exponentially.
    pub fn on_timeout(&mut self) {
        self.backoff = self.backoff.saturating_add(1);
    }
}

/// [`RtoEstimator`] plus the per-packet bookkeeping a stop-and-wait
/// style sender needs: when the outstanding frame was launched and
/// whether it has been retransmitted (Karn's rule makes its RTT sample
/// ambiguous). Window protocols keep their own per-sequence send
/// timestamps and feed [`PolicyRto::on_sample`] directly.
#[derive(Debug, Clone, PartialEq)]
pub struct ArqRto {
    est: RtoEstimator,
    sent_at: Option<Tick>,
    retransmitted: bool,
}

impl ArqRto {
    /// An adaptive ARQ timer starting from `initial_rto`, clamped to
    /// `[min_rto, max_rto]` (see [`RtoEstimator::new`]).
    pub fn new(initial_rto: Tick, min_rto: Tick, max_rto: Tick) -> Self {
        ArqRto {
            est: RtoEstimator::new(initial_rto, min_rto, max_rto),
            sent_at: None,
            retransmitted: false,
        }
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> Tick {
        self.est.rto()
    }

    /// The outstanding frame was (re)launched at `now`. A fresh launch
    /// starts a new RTT measurement; a retransmission poisons it per
    /// Karn's rule.
    pub fn on_send(&mut self, now: Tick, retransmit: bool) {
        if retransmit {
            self.retransmitted = true;
        } else {
            self.sent_at = Some(now);
            self.retransmitted = false;
        }
    }

    /// The outstanding frame was acknowledged at `now`: feeds the RTT
    /// sample when unambiguous, discards it (keeping any backoff)
    /// otherwise.
    pub fn on_ack(&mut self, now: Tick) {
        match self.sent_at.take() {
            Some(sent) if !self.retransmitted => self.est.on_sample(now - sent),
            _ => self.est.on_ambiguous_sample(),
        }
        self.retransmitted = false;
    }

    /// An unambiguous RTT sample measured by the caller (window
    /// protocols with per-sequence timestamps).
    pub fn on_sample(&mut self, rtt: Tick) {
        self.est.on_sample(rtt);
    }

    /// A retransmission timer fired: exponential backoff (counted in
    /// the `arq.rto_backoffs` metric).
    pub fn on_timeout(&mut self) {
        RTO_BACKOFFS.incr();
        self.est.on_timeout();
    }

    /// Smoothed RTT estimate, if any sample has been accepted.
    pub fn srtt(&self) -> Option<Tick> {
        self.est.srtt()
    }
}

/// The retransmission-timer axis as one value: the constant timer the
/// suite protocols always had, or an [`ArqRto`]. Every hook is a no-op
/// on the [`PolicyRto::Fixed`] arm — fixed-policy runs make exactly
/// the calls they made before this type existed, which is what keeps
/// the committed golden fixtures bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyRto {
    /// Constant retransmission timeout.
    Fixed(Tick),
    /// Adaptive SRTT/RTTVAR timer with Karn's rule and backoff.
    Adaptive(ArqRto),
}

impl PolicyRto {
    /// Builds the timer a [`RetransmitPolicy`] selects, seeding the
    /// adaptive estimator's initial RTO from the spec's fixed
    /// `timeout`.
    pub fn from_policy(policy: &RetransmitPolicy, timeout: Tick) -> Self {
        match *policy {
            RetransmitPolicy::Fixed => PolicyRto::Fixed(timeout),
            RetransmitPolicy::AdaptiveRto { min_rto, max_rto } => {
                PolicyRto::Adaptive(ArqRto::new(timeout, min_rto, max_rto))
            }
        }
    }

    /// Whether the adaptive arm is active.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, PolicyRto::Adaptive(_))
    }

    /// The timeout to arm the next retransmission timer with.
    pub fn rto(&self) -> Tick {
        match self {
            PolicyRto::Fixed(t) => *t,
            PolicyRto::Adaptive(a) => a.rto(),
        }
    }

    /// See [`ArqRto::on_send`]. No-op when fixed.
    pub fn on_send(&mut self, now: Tick, retransmit: bool) {
        if let PolicyRto::Adaptive(a) = self {
            a.on_send(now, retransmit);
        }
    }

    /// See [`ArqRto::on_ack`]. No-op when fixed.
    pub fn on_ack(&mut self, now: Tick) {
        if let PolicyRto::Adaptive(a) = self {
            a.on_ack(now);
        }
    }

    /// See [`ArqRto::on_sample`]. No-op when fixed.
    pub fn on_sample(&mut self, rtt: Tick) {
        if let PolicyRto::Adaptive(a) = self {
            a.on_sample(rtt);
        }
    }

    /// See [`ArqRto::on_timeout`]. No-op when fixed — in particular a
    /// fixed-policy timeout never touches the `arq.rto_backoffs`
    /// counter.
    pub fn on_timeout(&mut self) {
        if let PolicyRto::Adaptive(a) = self {
            a.on_timeout();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initialises_srtt() {
        let mut e = RtoEstimator::new(100, 10, 10_000);
        assert_eq!(e.srtt(), None);
        e.on_sample(50);
        assert_eq!(e.srtt(), Some(50));
        // rto = srtt + 4·(rtt/2) = 50 + 100 = 150.
        assert_eq!(e.rto(), 150);
    }

    #[test]
    fn estimator_converges_on_stable_rtt() {
        let mut e = RtoEstimator::new(1000, 10, 10_000);
        for _ in 0..100 {
            e.on_sample(40);
        }
        let srtt = e.srtt().unwrap();
        assert!((38..=42).contains(&srtt), "srtt {srtt}");
        // Variance collapses, so RTO approaches srtt (clamped by the +max(1)).
        assert!(e.rto() < 60, "rto {}", e.rto());
    }

    #[test]
    fn rto_tracks_rtt_increase() {
        let mut e = RtoEstimator::new(100, 10, 10_000);
        for _ in 0..20 {
            e.on_sample(40);
        }
        let before = e.rto();
        for _ in 0..20 {
            e.on_sample(400);
        }
        assert!(e.rto() > before * 3, "{} → {}", before, e.rto());
    }

    #[test]
    fn timeout_backs_off_exponentially_and_sample_resets() {
        let mut e = RtoEstimator::new(100, 10, 100_000);
        e.on_sample(100);
        let base = e.rto();
        e.on_timeout();
        assert_eq!(e.rto(), base * 2);
        e.on_timeout();
        assert_eq!(e.rto(), base * 4);
        e.on_sample(100);
        assert!(e.rto() <= base, "fresh sample clears backoff");
    }

    #[test]
    fn ambiguous_samples_do_not_move_srtt_and_keep_backoff() {
        let mut e = RtoEstimator::new(100, 10, 10_000);
        e.on_sample(50);
        let srtt = e.srtt();
        e.on_timeout();
        e.on_ambiguous_sample(); // retransmitted packet's ack
        assert_eq!(e.srtt(), srtt, "Karn: no update from retransmits");
        assert_eq!(e.rto(), 300, "backoff retained until a clean sample");
        e.on_sample(50);
        // srtt stays 50, rttvar decays 25 → 18.75, rto = 50 + 75 = 125.
        assert_eq!(e.rto(), 125, "clean sample clears backoff");
    }

    #[test]
    fn rto_clamped_to_bounds() {
        let mut e = RtoEstimator::new(100, 50, 200);
        for _ in 0..50 {
            e.on_sample(1);
        }
        assert!(e.rto() >= 50);
        for _ in 0..20 {
            e.on_timeout();
        }
        assert!(e.rto() <= 200);
    }

    #[test]
    #[should_panic(expected = "bounds")]
    fn inverted_bounds_panic() {
        RtoEstimator::new(100, 500, 50);
    }

    #[test]
    fn arq_rto_measures_clean_round_trips_only() {
        let mut t = ArqRto::new(200, 4, 100_000);
        t.on_send(10, false);
        t.on_ack(60); // clean 50-tick sample
        assert_eq!(t.srtt(), Some(50));
        let clean = t.rto();

        t.on_send(100, false);
        t.on_timeout();
        t.on_send(100 + t.rto(), true); // retransmission
        t.on_ack(500);
        assert_eq!(t.srtt(), Some(50), "Karn: retransmitted sample discarded");
        assert!(t.rto() > clean, "backoff retained after ambiguous ack");

        t.on_send(600, false);
        t.on_ack(650);
        assert!(t.rto() <= clean, "clean sample clears backoff");
    }

    #[test]
    fn policy_rto_fixed_arm_is_inert() {
        let mut p = PolicyRto::from_policy(&RetransmitPolicy::Fixed, 300);
        assert!(!p.is_adaptive());
        assert_eq!(p.rto(), 300);
        p.on_send(0, false);
        p.on_timeout();
        p.on_ack(5_000);
        p.on_sample(1);
        assert_eq!(p.rto(), 300, "fixed timers never move");
    }

    #[test]
    fn policy_rto_adaptive_arm_seeds_from_the_spec_timeout() {
        let policy = RetransmitPolicy::AdaptiveRto {
            min_rto: 8,
            max_rto: 4_000,
        };
        let mut p = PolicyRto::from_policy(&policy, 300);
        assert!(p.is_adaptive());
        assert_eq!(p.rto(), 300, "initial RTO is the fixed timeout");
        p.on_send(0, false);
        p.on_ack(40);
        assert!(p.rto() < 300, "estimator takes over after a sample");
        assert!(p.rto() >= 8);
        for _ in 0..32 {
            p.on_timeout();
        }
        assert!(p.rto() <= 4_000, "backoff capped at max_rto");
    }
}
