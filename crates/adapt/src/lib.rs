//! # netdsl-adapt — behavioural adaptation hooks
//!
//! §1.1 of the paper lists three capabilities next-generation protocols
//! need and current notations cannot express, each grounded in one of the
//! authors' references. This crate builds all three as libraries that
//! plug into netdsl protocols ("precisely the kind of functions that we
//! would like to have available in a library", §1.1):
//!
//! * [`fuzzy`] — "use of a fuzzy systems approach to deal with changes in
//!   the network conditions \[1\] to allow media-stream adaptation": a
//!   Mamdani fuzzy-inference controller plus a ready-made media-rate
//!   adaptor (experiment E7);
//! * [`trust`] — "routing through secure, exploratory learning of
//!   forwarding behaviour \[12\]": trust scores over relay paths learned
//!   from end-to-end outcomes, with ε-greedy exploration (experiment E9);
//! * [`timers`] — "adaptation of protocol timers to reduce overhead
//!   \[5\]": an RFC 6298-style adaptive retransmission-timeout estimator
//!   with Karn's algorithm and exponential backoff (experiment E8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzzy;
pub mod timers;
pub mod trust;

pub use fuzzy::{FuzzyController, FuzzySet, MediaAdapter};
pub use timers::{ArqRto, PolicyRto, RtoEstimator};
pub use trust::TrustTable;
