//! Crate-level smoke test: the three adaptation libraries respond sanely.

use rand::rngs::StdRng;
use rand::SeedableRng;

use netdsl_adapt::timers::RtoEstimator;
use netdsl_adapt::trust::TrustTable;
use netdsl_adapt::MediaAdapter;

#[test]
fn rto_estimator_tracks_rtt() {
    let mut e = RtoEstimator::new(3000, 100, 60_000);
    for _ in 0..8 {
        e.on_sample(50);
    }
    assert!(e.rto() < 3000, "RTO converges towards the true RTT");
    assert!(e.srtt().is_some());
}

#[test]
fn trust_table_learns_the_good_path() {
    let mut table = TrustTable::new(3, 0.1, 0.99);
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..300 {
        let path = table.choose(&mut rng);
        // Path 2 always delivers; the others always drop.
        table.record(path, path == 2);
    }
    assert!(table.trust(2) > table.trust(0));
    assert!(table.trust(2) > table.trust(1));
}

#[test]
fn media_adapter_backs_off_under_loss() {
    let mut adapter = MediaAdapter::new(1000.0, 100.0, 2000.0);
    let calm = adapter.observe(0.0, 0.1);
    let stressed = adapter.observe(0.5, 0.9);
    assert!(stressed <= calm, "rate does not rise under heavy loss");
}
