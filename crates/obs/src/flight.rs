//! The flight recorder: a bounded, preallocated ring of tick-stamped
//! structured events.
//!
//! A [`FlightRecorder`] answers "what was the engine doing just now"
//! without unbounded memory: the ring is allocated once at install time
//! and recording overwrites the oldest entry past capacity (counting
//! what it evicted, mirroring the bounded frame [`Trace`]). Events are
//! [`Copy`] and carry no heap data — recording a [`FlightEvent`] is a
//! couple of stores, so a recorder on the simulator hot path does not
//! disturb the `alloc_zero` invariant; with no recorder installed the
//! hot path pays one branch on an `Option`.
//!
//! A finished ring converts into a [`FlightRecording`] — the
//! serializable dump (`netdsl-flight/1`) that `tools/obs_report`
//! renders and the flight-parity suite replays against the golden
//! corpus.
//!
//! [`Trace`]: https://docs.rs/netdsl-netsim

use std::fmt;

use serde::json::Value;

/// Schema identifier embedded in every serialized recording.
pub const FLIGHT_SCHEMA: &str = "netdsl-flight/1";

/// What one flight-recorder entry describes.
///
/// The frame kinds (`Send`/`Deliver`/`Drop`/`Corrupt`) are recorded at
/// the exact hook points golden capture uses, so their subsequence
/// matches a fixture's golden event sequence one-for-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlightKind {
    /// A frame was handed to a link (`subject` = link, `detail` =
    /// payload bytes).
    Send,
    /// A frame copy reached the receiving endpoint (`subject` = link,
    /// `detail` = payload bytes).
    Deliver,
    /// The loss process dropped a frame (`subject` = link).
    Drop,
    /// The corruption process flipped a bit in a delivered copy
    /// (`subject` = link).
    Corrupt,
    /// A timer was armed (`subject` = node, `detail` = token).
    TimerSet,
    /// A timer fired (`subject` = node, `detail` = token).
    TimerFire,
    /// Pending timers with a token were cancelled (`subject` = node,
    /// `detail` = token).
    TimerCancel,
    /// An ARQ sender's retransmission timer expired (`subject` = node,
    /// `detail` = attempt token).
    ArqTimeout,
    /// An ARQ sender retransmitted (`subject` = node, `detail` =
    /// retransmission count so far).
    Retransmit,
    /// A received frame failed codec validation (`subject` = node).
    CodecReject,
    /// One tick's batch of due events was drained in the multiplexed
    /// pump (`subject` = frames, `detail` = timers in the batch).
    DrainBatch,
    /// A scheduled fault was applied to the world (`subject` = node or
    /// link index, `detail` = fault-action discriminant: 1 link
    /// reconfiguration, 2 crash, 3 restart, 4 clock skew).
    Fault,
}

impl FlightKind {
    /// Canonical serialized label.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::Send => "send",
            FlightKind::Deliver => "deliver",
            FlightKind::Drop => "drop",
            FlightKind::Corrupt => "corrupt",
            FlightKind::TimerSet => "timer_set",
            FlightKind::TimerFire => "timer_fire",
            FlightKind::TimerCancel => "timer_cancel",
            FlightKind::ArqTimeout => "arq_timeout",
            FlightKind::Retransmit => "retransmit",
            FlightKind::CodecReject => "codec_reject",
            FlightKind::DrainBatch => "drain_batch",
            FlightKind::Fault => "fault",
        }
    }

    /// Every kind, in serialization order (for report tables).
    pub const ALL: [FlightKind; 12] = [
        FlightKind::Send,
        FlightKind::Deliver,
        FlightKind::Drop,
        FlightKind::Corrupt,
        FlightKind::TimerSet,
        FlightKind::TimerFire,
        FlightKind::TimerCancel,
        FlightKind::ArqTimeout,
        FlightKind::Retransmit,
        FlightKind::CodecReject,
        FlightKind::DrainBatch,
        FlightKind::Fault,
    ];

    fn from_str(s: &str) -> Option<Self> {
        FlightKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl fmt::Display for FlightKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded event: a virtual-time stamp, a kind, and two
/// kind-specific integers (see [`FlightKind`] for what `subject` and
/// `detail` mean per kind). Deliberately [`Copy`] with no heap data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Virtual time of the event.
    pub at: u64,
    /// What happened.
    pub kind: FlightKind,
    /// Kind-specific: the link, node, or batch frame count involved.
    pub subject: u64,
    /// Kind-specific: payload bytes, timer token, or counts.
    pub detail: u64,
}

impl FlightEvent {
    fn to_json(self) -> Value {
        Value::object()
            .set("at", self.at as f64)
            .set("kind", self.kind.as_str())
            .set("subject", self.subject as f64)
            .set("detail", self.detail as f64)
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .and_then(FlightKind::from_str)
            .ok_or("missing or unknown event kind")?;
        let field = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing or mistyped event field {name:?}"))
        };
        Ok(FlightEvent {
            at: field("at")?,
            kind,
            subject: field("subject")?,
            detail: field("detail")?,
        })
    }
}

/// The bounded ring itself. Created at an explicit capacity (the whole
/// allocation happens here), recording is overwrite-past-capacity.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cap: usize,
    ring: Vec<FlightEvent>,
    /// Oldest entry once the ring has wrapped.
    head: usize,
    recorded: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (0 keeps only the
    /// recorded count — every event is evicted immediately).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            cap: capacity,
            ring: Vec::with_capacity(capacity),
            head: 0,
            recorded: 0,
        }
    }

    /// Records one event, evicting the oldest past capacity.
    pub fn record(&mut self, event: FlightEvent) {
        self.recorded += 1;
        if self.ring.len() < self.cap {
            self.ring.push(event);
        } else if self.cap > 0 {
            self.ring[self.head] = event;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if nothing was ever recorded or everything was evicted.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever recorded (retained + evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted past capacity.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.ring.len() as u64
    }

    /// The retained events in recording order (oldest first).
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }

    /// Converts into the serializable dump.
    #[must_use]
    pub fn into_recording(self) -> FlightRecording {
        FlightRecording {
            capacity: self.cap as u64,
            recorded: self.recorded,
            dropped: self.dropped(),
            events: self.events(),
        }
    }
}

/// A finished recording: ring bookkeeping plus the retained events in
/// order. Serializes to the `netdsl-flight/1` JSON form rendered by
/// `tools/obs_report`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecording {
    /// Ring capacity the recorder ran with.
    pub capacity: u64,
    /// Total events recorded (retained + evicted).
    pub recorded: u64,
    /// Events evicted past capacity.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<FlightEvent>,
}

impl FlightRecording {
    /// How many retained events carry each kind, in [`FlightKind::ALL`]
    /// order (zero-count kinds included).
    pub fn kind_counts(&self) -> Vec<(FlightKind, u64)> {
        FlightKind::ALL
            .into_iter()
            .map(|k| (k, self.events.iter().filter(|e| e.kind == k).count() as u64))
            .collect()
    }

    /// Serializes to the canonical JSON tree.
    pub fn to_json(&self) -> Value {
        Value::object()
            .set("schema", FLIGHT_SCHEMA)
            .set("capacity", self.capacity as f64)
            .set("recorded", self.recorded as f64)
            .set("dropped", self.dropped as f64)
            .set(
                "events",
                Value::Array(self.events.iter().map(|e| e.to_json()).collect()),
            )
    }

    /// Serializes to canonical JSON text (deterministic member order,
    /// trailing newline).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Parses a canonical JSON tree back into a recording.
    ///
    /// # Errors
    ///
    /// A message naming the missing or mistyped field, the schema
    /// mismatch, or the event-order violation.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema")?;
        if schema != FLIGHT_SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?} (expected {FLIGHT_SCHEMA:?})"
            ));
        }
        let field = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing or mistyped field {name:?}"))
        };
        let events = v
            .get("events")
            .and_then(Value::as_array)
            .ok_or("missing events")?
            .iter()
            .map(FlightEvent::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        for pair in events.windows(2) {
            if pair[1].at < pair[0].at {
                return Err("event times must be nondecreasing".to_string());
            }
        }
        Ok(FlightRecording {
            capacity: field("capacity")?,
            recorded: field("recorded")?,
            dropped: field("dropped")?,
            events,
        })
    }

    /// Parses canonical JSON text.
    ///
    /// # Errors
    ///
    /// As for [`FlightRecording::from_json`], plus JSON syntax errors.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let v = Value::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
        FlightRecording::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: FlightKind) -> FlightEvent {
        FlightEvent {
            at,
            kind,
            subject: at % 2,
            detail: at * 10,
        }
    }

    #[test]
    fn ring_keeps_the_newest_entries_and_counts_evictions() {
        let mut r = FlightRecorder::new(3);
        for at in 0..5 {
            r.record(ev(at, FlightKind::Send));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 2);
        let ats: Vec<u64> = r.events().iter().map(|e| e.at).collect();
        assert_eq!(ats, vec![2, 3, 4], "oldest first, newest retained");
    }

    #[test]
    fn zero_capacity_only_counts() {
        let mut r = FlightRecorder::new(0);
        r.record(ev(1, FlightKind::Drop));
        r.record(ev(2, FlightKind::Drop));
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 2);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn recording_round_trips_through_json() {
        let mut r = FlightRecorder::new(8);
        r.record(ev(0, FlightKind::Send));
        r.record(ev(3, FlightKind::Deliver));
        r.record(ev(3, FlightKind::TimerSet));
        r.record(ev(9, FlightKind::Retransmit));
        let rec = r.into_recording();
        let text = rec.to_json_string();
        let back = FlightRecording::from_json_str(&text).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.to_json_string(), text, "re-serialization is stable");
    }

    #[test]
    fn bad_schema_kind_and_order_are_rejected() {
        let mut r = FlightRecorder::new(4);
        r.record(ev(5, FlightKind::Send));
        r.record(ev(7, FlightKind::Deliver));
        let good = r.into_recording().to_json_string();
        let bad_schema = good.replace(FLIGHT_SCHEMA, "netdsl-flight/999");
        assert!(FlightRecording::from_json_str(&bad_schema).is_err());
        let bad_kind = good.replace("\"deliver\"", "\"teleport\"");
        assert!(FlightRecording::from_json_str(&bad_kind).is_err());
        let out_of_order = FlightRecording {
            capacity: 4,
            recorded: 2,
            dropped: 0,
            events: vec![ev(7, FlightKind::Send), ev(5, FlightKind::Deliver)],
        };
        assert!(FlightRecording::from_json_str(&out_of_order.to_json_string()).is_err());
    }

    #[test]
    fn kind_counts_cover_every_kind() {
        let mut r = FlightRecorder::new(8);
        r.record(ev(0, FlightKind::Send));
        r.record(ev(1, FlightKind::Send));
        r.record(ev(2, FlightKind::CodecReject));
        let counts = r.into_recording().kind_counts();
        assert_eq!(counts.len(), FlightKind::ALL.len());
        assert!(counts.contains(&(FlightKind::Send, 2)));
        assert!(counts.contains(&(FlightKind::CodecReject, 1)));
        assert!(counts.contains(&(FlightKind::DrainBatch, 0)));
    }
}
