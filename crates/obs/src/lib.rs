//! In-engine telemetry for the netdsl workspace.
//!
//! The engines of this workspace (compiled codec, pooled sim core,
//! compiled FSM, multiplexed sessions) report performance through
//! post-hoc `BENCH_*.json` artifacts; this crate makes runs
//! *explainable while they happen* without giving up the zero-alloc
//! invariants those engines are built on. Three pieces
//! (`docs/OBSERVABILITY.md`):
//!
//! * [`metrics`] — a static registry of [`Counter`]s, [`Gauge`]s and
//!   log-bucketed [`Histogram`]s with thread-sharded atomic cells.
//!   Statics are `const`-constructed and register themselves lazily on
//!   first touch (the one and only allocation); every update after
//!   warm-up is a thread-local lookup plus one relaxed atomic add, so
//!   the `alloc_zero` invariant holds with metrics enabled. A
//!   [`MetricsSnapshot`] merges every shard deterministically (sorted
//!   by metric name, thread-count invariant) and serializes to
//!   canonical JSON via the serde shim.
//! * [`flight`] — a bounded, preallocated ring of tick-stamped
//!   [`FlightEvent`]s (sends, deliveries, drops, timer traffic, ARQ
//!   timeouts/retransmits, codec rejects, drain batches). Recording is
//!   allocation-free; when no recorder is installed the hot path pays a
//!   single branch. Enabled per scenario through [`ObsConfig`] on
//!   `netdsl_netsim::scenario::EngineConfig`.
//! * [`progress`] — a [`ProgressSink`] fed by streaming campaigns
//!   (chunks done, cells/s, reservoir occupancy, per-worker session
//!   counts), with [`LogProgress`] as the ready-made one-line stderr
//!   reporter for long smokes.
//!
//! ```
//! use netdsl_obs::{Counter, set_metrics_enabled, snapshot};
//!
//! static DEMO_EVENTS: Counter = Counter::new("demo.events");
//! set_metrics_enabled(true);
//! DEMO_EVENTS.add(3);
//! let snap = snapshot();
//! assert_eq!(snap.counter("demo.events"), Some(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod flight;
pub mod metrics;
pub mod progress;

pub use config::{ObsConfig, DEFAULT_FLIGHT_CAPACITY};
pub use flight::{FlightEvent, FlightKind, FlightRecorder, FlightRecording, FLIGHT_SCHEMA};
pub use metrics::{
    metrics_enabled, reset_all, set_metrics_enabled, snapshot, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricsSnapshot, METRICS_SCHEMA,
};
pub use progress::{LogProgress, NullProgress, ProgressSink, ProgressUpdate};
