//! The static metric registry: counters, gauges and log-bucketed
//! histograms with thread-sharded atomic cells.
//!
//! Metrics are `static` items constructed with `const fn`s — no
//! registration boilerplate, no startup ordering:
//!
//! ```
//! use netdsl_obs::metrics::{set_metrics_enabled, snapshot, Counter, Histogram};
//!
//! static FRAMES: Counter = Counter::new("doc.frames");
//! static BYTES: Histogram = Histogram::new("doc.frame_bytes");
//!
//! set_metrics_enabled(true);
//! FRAMES.incr();
//! BYTES.observe(256);
//! assert_eq!(snapshot().counter("doc.frames"), Some(1));
//! ```
//!
//! Every update first checks the process-wide enable flag (one relaxed
//! atomic load — the whole cost of the disabled path), then registers
//! the metric on first touch (the one allocation a metric ever makes,
//! absorbed by warm-up) and bumps one thread-sharded relaxed atomic.
//! After warm-up the hot path allocates nothing, which is what lets the
//! simulator's `alloc_zero` invariant hold with metrics enabled.
//!
//! [`snapshot`] folds every shard of every registered metric into a
//! [`MetricsSnapshot`] sorted by metric name: the merge is a plain sum,
//! so the snapshot is identical whatever number of threads produced the
//! updates (pinned by the thread-count-invariance test).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::json::Value;

/// Schema identifier embedded in every serialized snapshot.
pub const METRICS_SCHEMA: &str = "netdsl-metrics/1";

/// Number of per-metric cell shards. Threads hash onto shards by a
/// process-wide round-robin id, so contention stays low without
/// per-thread storage proportional to the metric count.
const SHARDS: usize = 16;

/// Histogram bucket count: bucket `k > 0` counts values in
/// `[2^(k-1), 2^k)`; bucket 0 counts zeros; values at or above
/// `2^(BUCKETS-2)` collapse into the top bucket.
const BUCKETS: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the process-wide metric registry on or off, returning the
/// previous state. Disabled (the default), every update is a single
/// relaxed load and branch; values already recorded stay readable.
pub fn set_metrics_enabled(on: bool) -> bool {
    ENABLED.swap(on, Ordering::Relaxed)
}

/// Whether the registry is currently recording.
pub fn metrics_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread's shard index, assigned round-robin on first use.
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

fn shard() -> usize {
    SHARD.with(|s| *s)
}

/// What the global registry holds: `&'static` references pushed by each
/// metric on its first recorded update.
enum MetricRef {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

static REGISTRY: Mutex<Vec<MetricRef>> = Mutex::new(Vec::new());

/// A monotonically increasing count with thread-sharded cells.
pub struct Counter {
    name: &'static str,
    registered: AtomicBool,
    cells: [AtomicU64; SHARDS],
}

impl Counter {
    /// A counter static. `name` should be dot-namespaced
    /// (`"sim.frames_sent"`); snapshots sort by it.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            registered: AtomicBool::new(false),
            cells: [const { AtomicU64::new(0) }; SHARDS],
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` (no-op while the registry is disabled).
    pub fn add(&'static self, n: u64) {
        if !metrics_enabled() {
            return;
        }
        self.register_once();
        self.cells[shard()].fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one (no-op while the registry is disabled).
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// The merged value across every shard.
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    fn register_once(&'static self) {
        // Steady state is the relaxed load; the CAS (an atomic RMW even
        // when it fails) runs only until the first registration wins.
        if self.registered.load(Ordering::Relaxed) {
            return;
        }
        if self
            .registered
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            REGISTRY.lock().unwrap().push(MetricRef::Counter(self));
        }
    }

    fn reset(&self) {
        for c in &self.cells {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// A signed level (things currently open/in flight) with thread-sharded
/// cells; deltas sum exactly even when increments and decrements land on
/// different threads' shards.
pub struct Gauge {
    name: &'static str,
    registered: AtomicBool,
    /// Two's-complement `i64` deltas stored in `u64` cells (wrapping
    /// adds commute, so the shard sum reinterprets exactly).
    cells: [AtomicU64; SHARDS],
}

impl Gauge {
    /// A gauge static (see [`Counter::new`] for naming).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            registered: AtomicBool::new(false),
            cells: [const { AtomicU64::new(0) }; SHARDS],
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Moves the level by `delta` (no-op while the registry is
    /// disabled).
    pub fn add(&'static self, delta: i64) {
        if !metrics_enabled() {
            return;
        }
        self.register_once();
        self.cells[shard()].fetch_add(delta as u64, Ordering::Relaxed);
    }

    /// Raises the level by one.
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Lowers the level by one.
    pub fn decr(&'static self) {
        self.add(-1);
    }

    /// The merged level across every shard.
    pub fn value(&self) -> i64 {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add) as i64
    }

    fn register_once(&'static self) {
        // See `Counter::register_once`: load first, CAS only pre-registration.
        if self.registered.load(Ordering::Relaxed) {
            return;
        }
        if self
            .registered
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            REGISTRY.lock().unwrap().push(MetricRef::Gauge(self));
        }
    }

    fn reset(&self) {
        for c in &self.cells {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// One shard of a histogram: count, sum and power-of-two buckets.
struct HistShard {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// A log2-bucketed value distribution with thread-sharded cells.
/// Bucket `k > 0` counts observations in `[2^(k-1), 2^k)`; bucket 0
/// counts zeros.
pub struct Histogram {
    name: &'static str,
    registered: AtomicBool,
    shards: [HistShard; SHARDS],
}

/// Bucket index for a value (see [`Histogram`]).
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

impl Histogram {
    /// A histogram static (see [`Counter::new`] for naming).
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            registered: AtomicBool::new(false),
            shards: [const {
                HistShard {
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                    buckets: [const { AtomicU64::new(0) }; BUCKETS],
                }
            }; SHARDS],
        }
    }

    /// The metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one observation (no-op while the registry is disabled).
    pub fn observe(&'static self, v: u64) {
        if !metrics_enabled() {
            return;
        }
        self.register_once();
        let s = &self.shards[shard()];
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        s.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded across every shard.
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    fn register_once(&'static self) {
        // See `Counter::register_once`: load first, CAS only pre-registration.
        if self.registered.load(Ordering::Relaxed) {
            return;
        }
        if self
            .registered
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            REGISTRY.lock().unwrap().push(MetricRef::Histogram(self));
        }
    }

    fn merged(&self) -> HistogramSnapshot {
        let mut count = 0;
        let mut sum = 0;
        let mut totals = [0u64; BUCKETS];
        for s in &self.shards {
            count += s.count.load(Ordering::Relaxed);
            sum += s.sum.load(Ordering::Relaxed);
            for (t, b) in totals.iter_mut().zip(&s.buckets) {
                *t += b.load(Ordering::Relaxed);
            }
        }
        HistogramSnapshot {
            name: self.name.to_string(),
            count,
            sum,
            buckets: totals
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(k, &n)| (k as u32, n))
                .collect(),
        }
    }

    fn reset(&self) {
        for s in &self.shards {
            s.count.store(0, Ordering::Relaxed);
            s.sum.store(0, Ordering::Relaxed);
            for b in &s.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// The merged state of one histogram: total count, total sum, and the
/// non-empty buckets as `(bucket index, count)` pairs (bucket `k > 0`
/// covers `[2^(k-1), 2^k)`; bucket 0 covers exactly zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of every observed value.
    pub sum: u64,
    /// Non-empty `(bucket, count)` pairs in bucket order.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A deterministic cross-thread merge of every registered metric,
/// sorted by metric name — identical whatever thread count produced
/// the updates.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge levels, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram states, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Takes a snapshot of every registered metric. Metrics a run never
/// touched (or touched only while disabled) are absent.
pub fn snapshot() -> MetricsSnapshot {
    let registry = REGISTRY.lock().unwrap();
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for m in registry.iter() {
        match m {
            MetricRef::Counter(c) => counters.push((c.name.to_string(), c.value())),
            MetricRef::Gauge(g) => gauges.push((g.name.to_string(), g.value())),
            MetricRef::Histogram(h) => histograms.push(h.merged()),
        }
    }
    counters.sort();
    gauges.sort();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Zeroes every registered metric (the registration itself survives).
/// For harnesses and tests that need a clean slate — production code
/// should prefer snapshot deltas.
pub fn reset_all() {
    let registry = REGISTRY.lock().unwrap();
    for m in registry.iter() {
        match m {
            MetricRef::Counter(c) => c.reset(),
            MetricRef::Gauge(g) => g.reset(),
            MetricRef::Histogram(h) => h.reset(),
        }
    }
}

impl MetricsSnapshot {
    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Level of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// Histogram state by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|h| h.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i])
    }

    /// Serializes to the canonical JSON tree. Counts are carried as JSON
    /// numbers (`f64`); values above 2^53 would lose precision, far
    /// beyond any session count this workspace produces.
    pub fn to_json(&self) -> Value {
        let mut counters = Value::object();
        for (name, v) in &self.counters {
            counters = counters.set(name.as_str(), *v as f64);
        }
        let mut gauges = Value::object();
        for (name, v) in &self.gauges {
            gauges = gauges.set(name.as_str(), *v as f64);
        }
        Value::object()
            .set("schema", METRICS_SCHEMA)
            .set("counters", counters)
            .set("gauges", gauges)
            .set(
                "histograms",
                Value::Array(
                    self.histograms
                        .iter()
                        .map(|h| {
                            Value::object()
                                .set("name", h.name.as_str())
                                .set("count", h.count as f64)
                                .set("sum", h.sum as f64)
                                .set(
                                    "buckets",
                                    Value::Array(
                                        h.buckets
                                            .iter()
                                            .map(|&(k, n)| {
                                                Value::Array(vec![
                                                    Value::Number(f64::from(k)),
                                                    Value::Number(n as f64),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                )
                        })
                        .collect(),
                ),
            )
    }

    /// Serializes to canonical JSON text (deterministic: sorted names,
    /// fixed member order, trailing newline).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Parses a canonical JSON tree back into a snapshot.
    ///
    /// # Errors
    ///
    /// A message naming the missing or mistyped field, or the schema
    /// mismatch.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema")?;
        if schema != METRICS_SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?} (expected {METRICS_SCHEMA:?})"
            ));
        }
        let counters = v
            .get("counters")
            .and_then(Value::as_object)
            .ok_or("missing counters")?
            .iter()
            .map(|(name, n)| {
                n.as_u64()
                    .map(|n| (name.clone(), n))
                    .ok_or_else(|| format!("counter {name} must be a number"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let gauges = v
            .get("gauges")
            .and_then(Value::as_object)
            .ok_or("missing gauges")?
            .iter()
            .map(|(name, n)| {
                n.as_f64()
                    .map(|n| (name.clone(), n as i64))
                    .ok_or_else(|| format!("gauge {name} must be a number"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let histograms = v
            .get("histograms")
            .and_then(Value::as_array)
            .ok_or("missing histograms")?
            .iter()
            .map(|h| {
                let name = h
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("histogram missing name")?
                    .to_string();
                let buckets = h
                    .get("buckets")
                    .and_then(Value::as_array)
                    .ok_or("histogram missing buckets")?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_array().ok_or("bucket must be a [k, n] pair")?;
                        match pair {
                            [k, n] => Ok((
                                k.as_u64().ok_or("bucket index must be a number")? as u32,
                                n.as_u64().ok_or("bucket count must be a number")?,
                            )),
                            _ => Err("bucket must be a [k, n] pair".to_string()),
                        }
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(HistogramSnapshot {
                    name,
                    count: h
                        .get("count")
                        .and_then(Value::as_u64)
                        .ok_or("histogram missing count")?,
                    sum: h
                        .get("sum")
                        .and_then(Value::as_u64)
                        .ok_or("histogram missing sum")?,
                    buckets,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
    }

    /// Parses canonical JSON text.
    ///
    /// # Errors
    ///
    /// As for [`MetricsSnapshot::from_json`], plus JSON syntax errors.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let v = Value::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
        MetricsSnapshot::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that toggle it serialize
    /// through this lock (and restore the prior state on drop).
    static SERIAL: Mutex<()> = Mutex::new(());

    struct Enabled {
        was: bool,
        _guard: std::sync::MutexGuard<'static, ()>,
    }

    fn enabled() -> Enabled {
        let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        Enabled {
            was: set_metrics_enabled(true),
            _guard: guard,
        }
    }

    impl Drop for Enabled {
        fn drop(&mut self) {
            set_metrics_enabled(self.was);
        }
    }

    #[test]
    fn counters_and_gauges_merge_across_shards() {
        static HITS: Counter = Counter::new("test.hits");
        static LEVEL: Gauge = Gauge::new("test.level");
        let _on = enabled();
        let before_hits = HITS.value();
        let before_level = LEVEL.value();
        HITS.add(5);
        HITS.incr();
        LEVEL.incr();
        LEVEL.incr();
        LEVEL.decr();
        assert_eq!(HITS.value() - before_hits, 6);
        assert_eq!(LEVEL.value() - before_level, 1);
        let snap = snapshot();
        assert_eq!(snap.counter("test.hits"), Some(HITS.value()));
        assert_eq!(snap.gauge("test.level"), Some(LEVEL.value()));
    }

    #[test]
    fn disabled_updates_are_dropped() {
        static GHOST: Counter = Counter::new("test.ghost");
        let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let was = set_metrics_enabled(false);
        GHOST.add(7);
        assert_eq!(GHOST.value(), 0, "disabled add must not record");
        assert_eq!(snapshot().counter("test.ghost"), None, "never registered");
        set_metrics_enabled(was);
        drop(guard);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(255), 8);
        assert_eq!(bucket_of(256), 9);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);

        static SIZES: Histogram = Histogram::new("test.sizes");
        let _on = enabled();
        let before = SIZES.count();
        for v in [0, 1, 2, 3, 900] {
            SIZES.observe(v);
        }
        assert_eq!(SIZES.count() - before, 5);
        let snap = snapshot();
        let h = snap.histogram("test.sizes").unwrap();
        assert!(h.sum >= 906);
        assert!(h.buckets.iter().any(|&(k, _)| k == 10), "900 lands in k=10");
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        static RT: Counter = Counter::new("test.roundtrip");
        static RT_H: Histogram = Histogram::new("test.roundtrip_sizes");
        let _on = enabled();
        RT.add(3);
        RT_H.observe(100);
        let snap = snapshot();
        let text = snap.to_json_string();
        let back = MetricsSnapshot::from_json_str(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_json_string(), text, "re-serialization is stable");
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let _on = enabled();
        let v = snapshot().to_json().set("schema", "netdsl-metrics/999");
        assert!(MetricsSnapshot::from_json(&v).is_err());
    }

    #[test]
    fn merge_is_thread_count_invariant() {
        // The same workload split across 1, 2, 4 and 8 threads must
        // produce byte-identical snapshots of these metrics: the merge
        // is a shard sum and the serialization sorts by name, so the
        // thread topology cannot leak into the result.
        static INV_C: Counter = Counter::new("test.invariant_count");
        static INV_G: Gauge = Gauge::new("test.invariant_level");
        static INV_H: Histogram = Histogram::new("test.invariant_sizes");
        let _on = enabled();
        const TOTAL: u64 = 4_000;
        let mut dumps = Vec::new();
        for threads in [1u64, 2, 4, 8] {
            reset_all();
            let per = TOTAL / threads;
            std::thread::scope(|scope| {
                for t in 0..threads {
                    scope.spawn(move || {
                        for i in 0..per {
                            INV_C.incr();
                            INV_G.add(if i % 2 == 0 { 2 } else { -1 });
                            INV_H.observe(t * per + i);
                        }
                    });
                }
            });
            let snap = snapshot();
            assert_eq!(snap.counter("test.invariant_count"), Some(TOTAL));
            assert_eq!(snap.gauge("test.invariant_level"), Some(TOTAL as i64 / 2));
            let h = snap.histogram("test.invariant_sizes").unwrap();
            assert_eq!(h.count, TOTAL);
            assert_eq!(h.sum, TOTAL * (TOTAL - 1) / 2);
            // Keep only the invariant metrics: other tests in this
            // process may bump unrelated ones concurrently.
            let pruned = MetricsSnapshot {
                counters: vec![snap.counters[snap
                    .counters
                    .iter()
                    .position(|(n, _)| n == "test.invariant_count")
                    .unwrap()]
                .clone()],
                gauges: vec![snap.gauges[snap
                    .gauges
                    .iter()
                    .position(|(n, _)| n == "test.invariant_level")
                    .unwrap()]
                .clone()],
                histograms: vec![h.clone()],
            };
            dumps.push(pruned.to_json_string());
        }
        for d in &dumps[1..] {
            assert_eq!(d, &dumps[0], "snapshot depends on thread count");
        }
    }

    #[test]
    fn reset_all_zeroes_registered_metrics() {
        static RZ: Counter = Counter::new("test.reset");
        let _on = enabled();
        RZ.add(9);
        assert!(RZ.value() >= 9);
        reset_all();
        assert_eq!(RZ.value(), 0);
    }
}
