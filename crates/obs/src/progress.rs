//! Live campaign progress: the sink interface streaming campaigns feed
//! and a ready-made one-line stderr reporter.
//!
//! `Campaign::run_streaming_with` (netdsl-netsim) calls
//! [`ProgressSink::progress`] from its worker threads after every
//! finished chunk and once more after the final merge, handing a
//! [`ProgressUpdate`]. Sinks must be cheap and `Sync`; the campaign
//! never blocks on them beyond what the sink itself does.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One progress report from a streaming campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressUpdate {
    /// Chunks fully executed so far.
    pub chunks_done: usize,
    /// Total chunks in the run.
    pub chunks_total: usize,
    /// Scenario cells executed so far.
    pub cells_done: usize,
    /// Total cells in the run.
    pub cells_total: usize,
    /// Aggregate execution rate since the run started.
    pub cells_per_sec: f64,
    /// Raw-sample reservoir occupancy. During the run this is the
    /// merge-bound estimate `min(cells_done, raw_cap)`; the final
    /// update (after the sequential merge) carries the exact count.
    pub reservoir: usize,
    /// Raw-sample reservoir capacity (`StreamOptions::raw_cap`).
    pub raw_cap: usize,
    /// Cells executed by each worker shard so far (index = worker).
    pub shard_cells: Vec<u64>,
    /// `true` on the one post-merge update that closes the run.
    pub done: bool,
}

impl ProgressUpdate {
    /// Completed fraction in percent.
    pub fn percent(&self) -> f64 {
        if self.cells_total == 0 {
            100.0
        } else {
            self.cells_done as f64 * 100.0 / self.cells_total as f64
        }
    }

    /// The lightest- and heaviest-loaded worker shards as
    /// `(min, max)` cell counts (0, 0 when no worker reported yet).
    pub fn shard_spread(&self) -> (u64, u64) {
        match (self.shard_cells.iter().min(), self.shard_cells.iter().max()) {
            (Some(&min), Some(&max)) => (min, max),
            _ => (0, 0),
        }
    }

    /// Formats the canonical one-line summary [`LogProgress`] prints.
    pub fn one_line(&self) -> String {
        let (min, max) = self.shard_spread();
        format!(
            "{}/{} chunks · {}/{} cells ({:.1}%) · {:.0} cells/s · reservoir {}/{} · shards {} ({min}..{max})",
            self.chunks_done,
            self.chunks_total,
            self.cells_done,
            self.cells_total,
            self.percent(),
            self.cells_per_sec,
            self.reservoir,
            self.raw_cap,
            self.shard_cells.len(),
        )
    }
}

/// Receives progress updates from a streaming campaign. Implementations
/// are called concurrently from worker threads.
pub trait ProgressSink: Sync {
    /// One update; called after every finished chunk and after the
    /// final merge (`update.done`).
    fn progress(&self, update: &ProgressUpdate);
}

/// Discards every update — the sink behind the plain
/// `Campaign::run_streaming`, so the no-progress path stays exactly as
/// it was.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProgress;

impl ProgressSink for NullProgress {
    fn progress(&self, _update: &ProgressUpdate) {}
}

/// Prints a throttled one-line progress log to stderr — the reporter
/// the E15 million-session streaming smoke installs so the long run is
/// no longer silent.
#[derive(Debug)]
pub struct LogProgress {
    label: String,
    min_interval: Duration,
    last: Mutex<Option<Instant>>,
}

impl LogProgress {
    /// A logger tagged `label`, printing at most once per second (plus
    /// the final update).
    pub fn new(label: impl Into<String>) -> Self {
        LogProgress::with_interval(label, Duration::from_secs(1))
    }

    /// A logger with an explicit minimum interval between lines.
    pub fn with_interval(label: impl Into<String>, min_interval: Duration) -> Self {
        LogProgress {
            label: label.into(),
            min_interval,
            last: Mutex::new(None),
        }
    }
}

impl ProgressSink for LogProgress {
    fn progress(&self, update: &ProgressUpdate) {
        let mut last = self.last.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        let due = update.done || last.is_none_or(|t| now.duration_since(t) >= self.min_interval);
        if !due {
            return;
        }
        *last = Some(now);
        drop(last);
        eprintln!("[{}] {}", self.label, update.one_line());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(done: bool) -> ProgressUpdate {
        ProgressUpdate {
            chunks_done: 2,
            chunks_total: 8,
            cells_done: 1024,
            cells_total: 4096,
            cells_per_sec: 2048.0,
            reservoir: 512,
            raw_cap: 512,
            shard_cells: vec![512, 512],
            done,
        }
    }

    #[test]
    fn one_line_carries_the_load_bearing_numbers() {
        let line = update(false).one_line();
        assert!(line.contains("2/8 chunks"), "{line}");
        assert!(line.contains("1024/4096 cells (25.0%)"), "{line}");
        assert!(line.contains("reservoir 512/512"), "{line}");
        assert!(line.contains("shards 2 (512..512)"), "{line}");
    }

    #[test]
    fn empty_run_is_one_hundred_percent() {
        let mut u = update(true);
        u.cells_total = 0;
        u.cells_done = 0;
        u.shard_cells.clear();
        assert_eq!(u.percent(), 100.0);
        assert_eq!(u.shard_spread(), (0, 0));
    }

    #[test]
    fn throttling_suppresses_rapid_updates_but_not_the_final_one() {
        // The throttle state advances only when a line is emitted, so
        // the lock contents tell us which updates printed.
        let log = LogProgress::with_interval("test", Duration::from_secs(3600));
        log.progress(&update(false));
        let first = *log.last.lock().unwrap();
        assert!(first.is_some(), "first update prints");
        log.progress(&update(false));
        assert_eq!(
            *log.last.lock().unwrap(),
            first,
            "second update inside the interval is suppressed"
        );
        std::thread::sleep(Duration::from_millis(5));
        log.progress(&update(true));
        assert_ne!(
            *log.last.lock().unwrap(),
            first,
            "final update always prints"
        );
    }
}
