//! Per-scenario observability selection.
//!
//! [`ObsConfig`] rides on `netdsl_netsim::scenario::EngineConfig` the
//! way the engine axes do, but it is **not** a parity axis: turning
//! telemetry on must never change a scenario's result or transcript
//! (the E16 harness measures the overhead and the flight-parity suite
//! pins the equivalence), so golden fixtures and `EngineConfig::label`
//! ignore it.

/// Flight-recorder ring capacity used when a scenario enables the
/// recorder without choosing one.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// What a scenario asks the engine to observe.
///
/// The default is everything off — the hot path pays one branch for the
/// absent flight recorder and one relaxed load per metric site, which is
/// what keeps the `alloc_zero` invariant and the E13/E14/E15 numbers
/// untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ObsConfig {
    /// Enable the process-wide metric registry
    /// ([`crate::set_metrics_enabled`]) when this scenario is installed
    /// on a simulator. Enabling is sticky — the registry is global by
    /// nature, and concurrent scenarios without the flag must not turn
    /// it back off mid-run.
    pub metrics: bool,
    /// Install a flight recorder on the scenario's simulator.
    pub flight: bool,
    /// Flight ring capacity; 0 selects [`DEFAULT_FLIGHT_CAPACITY`].
    pub flight_capacity: u32,
}

impl ObsConfig {
    /// Everything off (the default).
    #[must_use]
    pub fn off() -> Self {
        ObsConfig::default()
    }

    /// Turns the metric registry on (builder style).
    #[must_use]
    pub fn with_metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Installs a flight recorder at the default capacity (builder
    /// style).
    #[must_use]
    pub fn with_flight(mut self) -> Self {
        self.flight = true;
        self
    }

    /// Installs a flight recorder with an explicit ring capacity
    /// (builder style; implies [`ObsConfig::with_flight`]).
    #[must_use]
    pub fn with_flight_capacity(mut self, capacity: u32) -> Self {
        self.flight = true;
        self.flight_capacity = capacity;
        self
    }

    /// `true` if anything is enabled.
    pub fn enabled(&self) -> bool {
        self.metrics || self.flight
    }

    /// The effective flight ring capacity.
    pub fn flight_cap(&self) -> usize {
        if self.flight_capacity == 0 {
            DEFAULT_FLIGHT_CAPACITY
        } else {
            self.flight_capacity as usize
        }
    }

    /// The least upper bound of two requests — what a multiplexed
    /// driver installs on a simulator co-hosting both scenarios.
    #[must_use]
    pub fn union(self, other: ObsConfig) -> ObsConfig {
        ObsConfig {
            metrics: self.metrics || other.metrics,
            flight: self.flight || other.flight,
            flight_capacity: self.flight_capacity.max(other.flight_capacity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off() {
        let cfg = ObsConfig::default();
        assert!(!cfg.enabled());
        assert_eq!(cfg, ObsConfig::off());
    }

    #[test]
    fn builders_compose() {
        let cfg = ObsConfig::off().with_metrics().with_flight_capacity(64);
        assert!(cfg.metrics && cfg.flight);
        assert_eq!(cfg.flight_cap(), 64);
        assert_eq!(
            ObsConfig::off().with_flight().flight_cap(),
            DEFAULT_FLIGHT_CAPACITY
        );
    }

    #[test]
    fn union_is_a_least_upper_bound() {
        let a = ObsConfig::off().with_metrics();
        let b = ObsConfig::off().with_flight_capacity(128);
        let u = a.union(b);
        assert!(u.metrics && u.flight);
        assert_eq!(u.flight_capacity, 128);
        assert_eq!(u, b.union(a));
        assert_eq!(a.union(ObsConfig::off()), a);
    }
}
