//! # netdsl — correct-by-construction network protocols
//!
//! Facade crate re-exporting the whole workspace, which reproduces
//! *"Domain Specific Languages (DSLs) for Network Protocols"* (Bhatti,
//! Brady, Hammond, McKinna — ICDCS 2009): a protocol-definition DSL in
//! which packet formats (with semantic constraints), state machines (with
//! soundness and completeness guarantees) and their execution live in one
//! framework.
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`wire`] | `netdsl-wire` | bit-granular I/O, checksums |
//! | [`abnf`] | `netdsl-abnf` | RFC 5234 grammars (syntactic baseline 1) |
//! | [`asn1`] | `netdsl-asn1` | ASN.1 + DER (syntactic baseline 2) |
//! | [`core`] | `netdsl-core` | the DSL: packet specs, witnesses, typestate & reified FSMs |
//! | [`codec`] | `netdsl-codec` | compiled codec engine: flat IR + zero-copy batch interpreter |
//! | [`verify`] | `netdsl-verify` | model checker + behavioural test generation |
//! | [`obs`] | `netdsl-obs` | telemetry: metric registry, flight recorder, progress sinks |
//! | [`netsim`] | `netdsl-netsim` | deterministic network simulator |
//! | [`protocols`] | `netdsl-protocols` | ARQ (§3.4), GBN, SR, handshake, IPv4, UDP, TFTP, baseline |
//! | [`adapt`] | `netdsl-adapt` | fuzzy QoS, trust routing, adaptive timers |
//!
//! # Quickstart
//!
//! ```
//! use netdsl::protocols::arq::session::run_transfer;
//! use netdsl::netsim::LinkConfig;
//!
//! let messages = vec![b"hello".to_vec(), b"world".to_vec()];
//! let out = run_transfer(messages, LinkConfig::lossy(5, 0.2), 42, 100, 10, 1_000_000);
//! assert!(out.success);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// RFC 5234 ABNF grammars — the paper's first syntactic baseline.
///
/// ```
/// let g = netdsl::abnf::Grammar::parse("num = 1*3DIGIT\n").unwrap();
/// assert!(g.matches("num", b"123").unwrap());
/// assert!(!g.matches("num", b"12345").unwrap());
/// ```
pub use netdsl_abnf as abnf;

/// Behavioural adaptation: fuzzy QoS, trust routing, adaptive timers.
///
/// ```
/// let mut rto = netdsl::adapt::RtoEstimator::new(3000, 100, 60_000);
/// rto.on_sample(50);
/// assert!(rto.rto() < 3000, "RTO converges after a sample");
/// ```
pub use netdsl_adapt as adapt;

/// Experiment machinery: the benchmark-report schema every harness
/// emits ([`bench::report`]), the campaign builders behind the
/// E-harnesses ([`bench::harnesses`]), and the drivers composing
/// `protocols` × `adapt`. The artifact format and CI gating are
/// documented in `docs/BENCHMARKS.md`.
///
/// ```
/// use netdsl::bench::report::{BenchReport, Metric};
/// let mut r = BenchReport::new("doc", "facade doctest");
/// r.push(Metric::new("latency", "ms").with_samples([1.0, 2.0, 4.0]));
/// let back = BenchReport::from_json_str(&r.to_json_string()).unwrap();
/// assert_eq!(back, r);
/// assert_eq!(back.metrics[0].aggregate().median(), 2.0);
/// ```
pub use netdsl_bench as bench;

/// ASN.1 + DER — the paper's second syntactic baseline.
///
/// ```
/// use netdsl::asn1::{der, AsnValue};
/// let v = AsnValue::Integer(300);
/// assert_eq!(der::decode(&der::encode(&v)).unwrap(), v);
/// ```
pub use netdsl_asn1 as asn1;

/// The compiled codec engine: [`lower`](codec::lower()) compiles a
/// [`PacketSpec`](core::packet::PacketSpec) to a flat IR program, and
/// the register-style interpreter decodes borrowed frames zero-copy
/// (span table instead of an allocated value map) with batch APIs.
/// Behaviour matches the interpretive walker verdict-for-verdict;
/// experiment E12 tracks the speedup. See `docs/CODEC.md`.
///
/// ```
/// use netdsl::core::packet::{Coverage, Len, PacketSpec, Value};
/// use netdsl::wire::checksum::ChecksumKind;
///
/// let spec = PacketSpec::builder("ping")
///     .uint("seq", 16)
///     .checksum("ck", ChecksumKind::Crc16Ccitt, Coverage::Whole)
///     .bytes("body", Len::Rest)
///     .build()
///     .unwrap();
/// let codec = netdsl::codec::lower(&spec).unwrap();
///
/// let mut v = spec.value();
/// v.set("seq", Value::Uint(99));
/// v.set("body", Value::Bytes(b"zero-copy".to_vec()));
/// let wire = codec.encode_packet_value(&v).unwrap();
/// assert_eq!(wire, spec.encode(&v).unwrap(), "byte-identical paths");
///
/// let frame = codec.decode(&wire).unwrap();
/// assert_eq!(frame.uint("seq"), Some(99));
/// assert_eq!(frame.bytes("body"), Some(&b"zero-copy"[..]));
/// ```
pub use netdsl_codec as codec;

/// The DSL itself: packet specs, witnesses, typestate and reified FSMs.
///
/// ```
/// use netdsl::core::fsm::paper_sender_spec;
/// let spec = paper_sender_spec(7);
/// assert_eq!(spec.name(), "paper-arq-sender");
/// ```
pub use netdsl_core as core;

/// Deterministic network simulator (loss, duplication, corruption,
/// jitter) with a zero-allocation frame hot path: payloads live in a
/// refcounted arena ([`netsim::PayloadArena`]) and events schedule on a
/// hierarchical timer wheel, with the pre-arena engine retained as the
/// bit-identical [`netsim::SimCore::Legacy`] baseline
/// (`docs/SIMCORE.md`, experiment E13).
///
/// ```
/// use netdsl::netsim::{EventRef, LinkConfig, Simulator};
/// let mut sim = Simulator::new(1);
/// let (a, b) = (sim.add_node(), sim.add_node());
/// let link = sim.add_link(a, b, LinkConfig::reliable(3));
/// // Allocation-free handle path: encode into a pooled buffer…
/// let frame = sim.alloc_payload_with(|buf| buf.extend_from_slice(&[0x42]));
/// assert!(sim.send_ref(link, frame));
/// // …and detach/recycle on delivery.
/// let Some(EventRef::Frame { payload, .. }) = sim.step_ref() else {
///     unreachable!()
/// };
/// let bytes = sim.detach_payload(payload);
/// assert_eq!(bytes, vec![0x42]);
/// sim.recycle_payload(bytes);
/// ```
pub use netdsl_netsim as netsim;

/// Homegrown telemetry: a static metric registry (counters, gauges,
/// log-bucketed histograms; zero steady-state allocation, deterministic
/// cross-thread snapshots), a bounded flight recorder of structured
/// engine events, and campaign progress sinks. Scenarios opt in via
/// [`netsim::ObsConfig`] — telemetry is **not** a parity axis and never
/// changes a transcript. See `docs/OBSERVABILITY.md`.
///
/// ```
/// use netdsl::obs::{set_metrics_enabled, snapshot, Counter};
/// static DOC_HITS: Counter = Counter::new("doc.hits");
/// set_metrics_enabled(true);
/// DOC_HITS.incr();
/// assert!(DOC_HITS.value() >= 1);
/// assert!(snapshot().counter("doc.hits").is_some());
/// ```
pub use netdsl_obs as obs;

/// Declarative scenario campaigns: labelled sweeps over protocols ×
/// links × topologies × traffic × seeds, expanded to a grid and run in
/// parallel with deterministic per-scenario seeding. The tutorial lives
/// in `docs/SCENARIOS.md`; drivers for the protocol suite are in
/// [`protocols::scenario`].
///
/// ```
/// use netdsl::campaign::{Campaign, Sweep};
/// use netdsl::scenario::ProtocolSpec;
/// use netdsl::netsim::LinkConfig;
/// use netdsl::protocols::scenario::{SuiteDriver, STOP_AND_WAIT};
///
/// let report = Campaign::new("doc", 7)
///     .protocols(Sweep::single("sw", ProtocolSpec::new(STOP_AND_WAIT)))
///     .links(Sweep::single("lossy", LinkConfig::lossy(3, 0.2)))
///     .seeds(Sweep::seeds(2))
///     .run(&SuiteDriver::new(), 2);
/// assert_eq!(report.aggregate().succeeded, 2);
/// ```
pub use netdsl_netsim::campaign;

/// Scenario descriptions ([`Scenario`](scenario::Scenario),
/// [`ProtocolSpec`](scenario::ProtocolSpec), faults, traffic patterns)
/// and the [`ScenarioDriver`](scenario::ScenarioDriver) plug-in trait
/// that campaign execution dispatches through.
pub use netdsl_netsim::scenario;

/// Protocols written in the DSL: ARQ (§3.4), GBN, SR, handshake, IPv4,
/// UDP, TFTP and the hand-rolled baseline.
///
/// ```
/// let spec = netdsl::protocols::ipv4::ipv4_spec();
/// assert_eq!(spec.name(), "ipv4");
/// ```
pub use netdsl_protocols as protocols;

/// Model checker and behavioural test generation over reified specs.
///
/// ```
/// use netdsl::core::fsm::paper_sender_spec;
/// use netdsl::verify::{props::check_spec, Limits};
/// let report = check_spec(&paper_sender_spec(3), Limits::default());
/// assert!(report.all_hold());
/// ```
pub use netdsl_verify as verify;

/// Bit-granular wire I/O and checksums.
///
/// ```
/// use netdsl::wire::checksum::{arq_check, arq_verify};
/// let c = arq_check(1, b"payload");
/// assert!(arq_verify(1, b"payload", c));
/// ```
pub use netdsl_wire as wire;
