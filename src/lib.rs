//! # netdsl — correct-by-construction network protocols
//!
//! Facade crate re-exporting the whole workspace, which reproduces
//! *"Domain Specific Languages (DSLs) for Network Protocols"* (Bhatti,
//! Brady, Hammond, McKinna — ICDCS 2009): a protocol-definition DSL in
//! which packet formats (with semantic constraints), state machines (with
//! soundness and completeness guarantees) and their execution live in one
//! framework.
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`wire`] | `netdsl-wire` | bit-granular I/O, checksums |
//! | [`abnf`] | `netdsl-abnf` | RFC 5234 grammars (syntactic baseline 1) |
//! | [`asn1`] | `netdsl-asn1` | ASN.1 + DER (syntactic baseline 2) |
//! | [`core`] | `netdsl-core` | the DSL: packet specs, witnesses, typestate & reified FSMs |
//! | [`verify`] | `netdsl-verify` | model checker + behavioural test generation |
//! | [`netsim`] | `netdsl-netsim` | deterministic network simulator |
//! | [`protocols`] | `netdsl-protocols` | ARQ (§3.4), GBN, SR, handshake, IPv4, UDP, TFTP, baseline |
//! | [`adapt`] | `netdsl-adapt` | fuzzy QoS, trust routing, adaptive timers |
//!
//! # Quickstart
//!
//! ```
//! use netdsl::protocols::arq::session::run_transfer;
//! use netdsl::netsim::LinkConfig;
//!
//! let messages = vec![b"hello".to_vec(), b"world".to_vec()];
//! let out = run_transfer(messages, LinkConfig::lossy(5, 0.2), 42, 100, 10, 1_000_000);
//! assert!(out.success);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use netdsl_abnf as abnf;
pub use netdsl_asn1 as asn1;
pub use netdsl_adapt as adapt;
pub use netdsl_core as core;
pub use netdsl_netsim as netsim;
pub use netdsl_protocols as protocols;
pub use netdsl_verify as verify;
pub use netdsl_wire as wire;
