//! Regenerates (or, with `--check`, verifies) the committed golden-trace
//! corpus under `tests/golden/`.
//!
//! ```text
//! cargo run -p netdsl-tools --bin golden             # rewrite fixtures
//! cargo run -p netdsl-tools --bin golden -- --check  # CI gate
//! ```
//!
//! The fixture set is defined once, in
//! `netdsl_protocols::golden::corpus()`; this tool records each scenario
//! under the default engine axes (pooled core, interpreted codec,
//! typestate FSM — the transcript is axis-independent, which
//! `tests/golden_parity.rs` proves by replaying every fixture under the
//! full engine-axis product) and serializes it canonically.
//!
//! `--check` re-records every fixture and fails on any drift from the
//! committed bytes, any missing fixture, and any stale `*.json` file
//! that no longer corresponds to a corpus entry — so both behavioural
//! changes and corpus edits must land together with regenerated
//! fixtures. Exit code 0 when clean, 1 otherwise.

use std::path::PathBuf;
use std::process::ExitCode;

use netdsl_protocols::golden::{corpus, record};

/// Nearest ancestor of the current directory holding `Cargo.lock` — the
/// workspace root, wherever the tool is invoked from.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn main() -> ExitCode {
    let mut check = false;
    let mut dir: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            "--help" | "-h" => {
                println!("usage: golden [--check] [fixtures-dir]");
                return ExitCode::SUCCESS;
            }
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let dir = dir.unwrap_or_else(|| workspace_root().join("tests/golden"));

    let fixtures = corpus();
    let mut problems: Vec<String> = Vec::new();
    let mut expected_files: Vec<String> = Vec::new();

    if !check {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("FAIL: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    for scenario in &fixtures {
        let trace = match record(scenario) {
            Ok(trace) => trace,
            Err(e) => {
                problems.push(format!("{}: recording failed: {e}", scenario.name));
                continue;
            }
        };
        let text = trace.to_json_string();
        let file = format!("{}.json", scenario.name);
        let path = dir.join(&file);
        expected_files.push(file.clone());
        let existing = std::fs::read_to_string(&path).ok();
        if check {
            match existing {
                None => problems.push(format!("{file}: missing (run tools/golden to generate)")),
                Some(committed) if committed != text => problems.push(format!(
                    "{file}: drift — re-recorded transcript differs from the committed fixture \
                     ({} vs {} bytes); run tools/golden and review the diff",
                    text.len(),
                    committed.len()
                )),
                Some(_) => println!("ok   {file}: {} events", trace.events.len()),
            }
        } else if existing.as_deref() == Some(text.as_str()) {
            println!("ok   {file}: unchanged ({} events)", trace.events.len());
        } else {
            let verb = if existing.is_some() {
                "rewrote"
            } else {
                "wrote"
            };
            if let Err(e) = std::fs::write(&path, &text) {
                problems.push(format!("{file}: cannot write: {e}"));
            } else {
                println!("{verb} {file}: {} events", trace.events.len());
            }
        }
    }

    // Stale fixtures: files in the corpus directory no scenario claims.
    match std::fs::read_dir(&dir) {
        Ok(entries) => {
            for path in entries.filter_map(|e| e.ok().map(|e| e.path())) {
                let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                if !name.ends_with(".json") || expected_files.iter().any(|f| f == name) {
                    continue;
                }
                if check {
                    problems.push(format!(
                        "{name}: stale fixture — no corpus entry produces it"
                    ));
                } else if let Err(e) = std::fs::remove_file(&path) {
                    problems.push(format!("{name}: stale but cannot remove: {e}"));
                } else {
                    println!("removed stale {name}");
                }
            }
        }
        Err(e) => problems.push(format!("cannot read {}: {e}", dir.display())),
    }

    if problems.is_empty() {
        println!(
            "golden corpus {}: all {} fixtures in sync",
            dir.display(),
            fixtures.len()
        );
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("FAIL {p}");
        }
        ExitCode::FAILURE
    }
}
