//! CI gate for benchmark artifacts: validates every
//! `bench-results/BENCH_*.json` against the shared report schema.
//!
//! ```text
//! cargo run -p netdsl-tools --bin check_bench_json -- \
//!     [--expect <id>]... [--expect-benches <benches-dir>]... [dir]
//! ```
//!
//! Checks, per file: parses as a schema-valid
//! [`BenchReport`] (which re-derives
//! the `stats` blocks from the samples — a tampered or truncated
//! artifact fails), the id matches the file name, the report carries at
//! least one metric, and at least one metric carries samples.
//!
//! Expectations come in two forms. `--expect e4_arq_goodput`
//! (repeatable) names one required artifact id. `--expect-benches
//! crates/bench/benches` **discovers** the expected ids from the bench
//! target sources themselves — every `*.rs` file stem in the directory
//! becomes a required id — so adding a harness (E12, E13, …)
//! automatically extends the CI gate with no hardcoded list to forget;
//! a bench that stops emitting JSON fails the pipeline instead of
//! silently thinning the trajectory. Corollary: every `*.rs` file in
//! the benches directory is treated as a harness; bench-support helper
//! modules belong in the crate's `src/`, not alongside the targets.
//!
//! Exit code 0 when everything passes; 1 otherwise, after printing
//! every problem found.

use std::path::PathBuf;
use std::process::ExitCode;

use netdsl_bench::report::BenchReport;

/// Expected ids discovered from a benches directory: one per `*.rs`
/// file stem.
fn bench_stems(dir: &PathBuf) -> Result<Vec<String>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut stems: Vec<String> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .filter_map(|p| p.file_stem().and_then(|s| s.to_str()).map(String::from))
        .collect();
    stems.sort();
    if stems.is_empty() {
        return Err(format!("no *.rs bench targets in {}", dir.display()));
    }
    Ok(stems)
}

fn main() -> ExitCode {
    let mut expected: Vec<String> = Vec::new();
    let mut dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--expect" => match args.next() {
                Some(id) => expected.push(id),
                None => {
                    eprintln!("--expect needs a report id");
                    return ExitCode::FAILURE;
                }
            },
            "--expect-benches" => match args.next() {
                Some(benches) => match bench_stems(&PathBuf::from(&benches)) {
                    Ok(stems) => {
                        println!(
                            "discovered {} expected ids from {benches}: {}",
                            stems.len(),
                            stems.join(", ")
                        );
                        expected.extend(stems);
                    }
                    Err(e) => {
                        eprintln!("FAIL: --expect-benches {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("--expect-benches needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: check_bench_json [--expect <id>]... [--expect-benches <dir>]... [dir]"
                );
                return ExitCode::SUCCESS;
            }
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let dir = dir.unwrap_or_else(|| PathBuf::from("bench-results"));

    let mut problems: Vec<String> = Vec::new();
    let mut seen: Vec<String> = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("FAIL: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();

    if paths.is_empty() {
        eprintln!("FAIL: no BENCH_*.json artifacts in {}", dir.display());
        return ExitCode::FAILURE;
    }

    for path in &paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                problems.push(format!("{name}: unreadable: {e}"));
                continue;
            }
        };
        let report = match BenchReport::from_json_str(&text) {
            Ok(report) => report,
            Err(e) => {
                problems.push(format!("{name}: {e}"));
                continue;
            }
        };
        let problems_before = problems.len();
        if format!("BENCH_{}.json", report.id) != name {
            problems.push(format!(
                "{name}: id {:?} does not match file name",
                report.id
            ));
        }
        if report.metrics.is_empty() {
            problems.push(format!("{name}: report carries no metrics"));
        } else if report.metrics.iter().all(|m| m.samples.is_empty()) {
            problems.push(format!("{name}: every metric is empty of samples"));
        }
        if problems.len() == problems_before {
            let samples: usize = report.metrics.iter().map(|m| m.samples.len()).sum();
            println!(
                "ok   {name}: {} mode, {} metrics, {samples} samples",
                report.mode.as_str(),
                report.metrics.len()
            );
            seen.push(report.id);
        }
    }

    for id in &expected {
        if !seen.contains(id) {
            problems.push(format!("expected artifact BENCH_{id}.json is missing"));
        }
    }

    if problems.is_empty() {
        println!("all {} artifacts are schema-valid", paths.len());
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("FAIL {p}");
        }
        ExitCode::FAILURE
    }
}
