//! CI gate for benchmark artifacts: validates every
//! `bench-results/BENCH_*.json` against the shared report schema.
//!
//! ```text
//! cargo run -p netdsl-tools --bin check_bench_json -- \
//!     [--expect <id>]... [--expect-benches <benches-dir>]... \
//!     [--expect-stages <id>]... [--min-metric <id>:<metric>:<min>]... [dir]
//! ```
//!
//! Checks, per file: parses as a schema-valid
//! [`BenchReport`] (which re-derives
//! the `stats` blocks from the samples — a tampered or truncated
//! artifact fails), the id matches the file name, the report carries at
//! least one metric, at least one metric carries samples, and — always,
//! no flag required — every metric carrying a `stage` axis conforms to
//! the stage-attribution contract: the metric is named
//! [`STAGE_METRIC`] and its label is one of the canonical [`STAGES`].
//! A misspelt stage would otherwise fork the label space and silently
//! break cross-commit, cross-harness stage diffs.
//!
//! Expectations come in three forms. `--expect e4_arq_goodput`
//! (repeatable) names one required artifact id. `--expect-benches
//! crates/bench/benches` **discovers** the expected ids from the bench
//! target sources themselves — every `*.rs` file stem in the directory
//! becomes a required id — so adding a harness (E12, E13, …)
//! automatically extends the CI gate with no hardcoded list to forget;
//! a bench that stops emitting JSON fails the pipeline instead of
//! silently thinning the trajectory. Corollary: every `*.rs` file in
//! the benches directory is treated as a harness; bench-support helper
//! modules belong in the crate's `src/`, not alongside the targets.
//! `--expect-stages E13` (repeatable) requires the named artifact to
//! carry the full stage-attribution profile: a [`STAGE_METRIC`] series
//! with non-empty samples for **every** canonical stage — the gate that
//! keeps the engine harnesses' artifacts triage-capable.
//!
//! `--min-metric <id>:<metric>:<min>` (repeatable) additionally gates a
//! performance claim: the named report must carry the named metric and
//! its sample mean must be ≥ `min`. This is how the simcore speedup
//! gate (`--min-metric E13:campaign_speedup:1.5`) turns a regression of
//! the pooled engine against the pre-arena baseline into a red build.
//!
//! Exit code 0 when everything passes; 1 otherwise, after printing
//! every problem found.

use std::path::PathBuf;
use std::process::ExitCode;

use netdsl_bench::report::BenchReport;
use netdsl_bench::stages::{STAGES, STAGE_METRIC};

/// Expected ids discovered from a benches directory: one per `*.rs`
/// file stem.
fn bench_stems(dir: &PathBuf) -> Result<Vec<String>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut stems: Vec<String> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .filter_map(|p| p.file_stem().and_then(|s| s.to_str()).map(String::from))
        .collect();
    stems.sort();
    if stems.is_empty() {
        return Err(format!("no *.rs bench targets in {}", dir.display()));
    }
    Ok(stems)
}

/// One `--min-metric` expectation: report `id` must carry `metric`
/// with a sample mean of at least `min`.
struct MetricFloor {
    id: String,
    metric: String,
    min: f64,
}

fn parse_metric_floor(spec: &str) -> Result<MetricFloor, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [id, metric, min] = parts[..] else {
        return Err(format!("expected <id>:<metric>:<min>, got {spec:?}"));
    };
    let min: f64 = min
        .parse()
        .map_err(|e| format!("bad minimum in {spec:?}: {e}"))?;
    Ok(MetricFloor {
        id: id.to_string(),
        metric: metric.to_string(),
        min,
    })
}

/// Validates one artifact's text end to end: schema parse, filename/id
/// agreement, non-emptiness, the stage-label contract, and any matching
/// metric floors. Returns the parsed report plus human-readable gate
/// confirmations on success, or everything wrong with it.
fn validate_artifact(
    name: &str,
    text: &str,
    floors: &[MetricFloor],
) -> Result<(BenchReport, Vec<String>), Vec<String>> {
    let report = match BenchReport::from_json_str(text) {
        Ok(report) => report,
        Err(e) => return Err(vec![format!("{name}: {e}")]),
    };
    let mut problems: Vec<String> = Vec::new();
    let mut confirmations: Vec<String> = Vec::new();
    if format!("BENCH_{}.json", report.id) != name {
        problems.push(format!(
            "{name}: id {:?} does not match file name",
            report.id
        ));
    }
    if report.metrics.is_empty() {
        problems.push(format!("{name}: report carries no metrics"));
    } else if report.metrics.iter().all(|m| m.samples.is_empty()) {
        problems.push(format!("{name}: every metric is empty of samples"));
    }
    problems.extend(stage_label_problems(name, &report));
    for floor in floors.iter().filter(|f| f.id == report.id) {
        let means: Vec<f64> = report
            .metrics
            .iter()
            .filter(|m| m.name == floor.metric && !m.samples.is_empty())
            .map(|m| m.samples.iter().sum::<f64>() / m.samples.len() as f64)
            .collect();
        if means.is_empty() {
            problems.push(format!(
                "{name}: gated metric {:?} is missing or empty",
                floor.metric
            ));
        } else if let Some(&low) = means
            .iter()
            .find(|&&mean| !(mean.is_finite() && mean >= floor.min))
        {
            problems.push(format!(
                "{name}: {} mean {low:.3} is below the required {:.3}",
                floor.metric, floor.min
            ));
        } else {
            confirmations.push(format!(
                "gate {name}: {} mean {:.3} ≥ {:.3}",
                floor.metric,
                means.iter().fold(f64::INFINITY, |a, &b| a.min(b)),
                floor.min
            ));
        }
    }
    if problems.is_empty() {
        Ok((report, confirmations))
    } else {
        Err(problems)
    }
}

/// The always-on half of the stage contract: any metric that claims a
/// `stage` axis must be a [`STAGE_METRIC`] series labelled with a
/// canonical stage.
fn stage_label_problems(name: &str, report: &BenchReport) -> Vec<String> {
    let mut problems = Vec::new();
    for m in &report.metrics {
        let Some((_, label)) = m.axes.iter().find(|(axis, _)| axis == "stage") else {
            continue;
        };
        if m.name != STAGE_METRIC {
            problems.push(format!(
                "{name}: metric {:?} carries a `stage` axis but only {STAGE_METRIC:?} may",
                m.name
            ));
        }
        if !STAGES.contains(&label.as_str()) {
            problems.push(format!(
                "{name}: unknown stage label {label:?} (canonical: {})",
                STAGES.join(", ")
            ));
        }
    }
    problems
}

/// The opt-in half (`--expect-stages`): the report must carry a
/// non-empty [`STAGE_METRIC`] series for every canonical stage.
fn stage_coverage_problems(name: &str, report: &BenchReport) -> Vec<String> {
    STAGES
        .iter()
        .filter(|stage| {
            !report.metrics.iter().any(|m| {
                m.name == STAGE_METRIC
                    && !m.samples.is_empty()
                    && m.axes
                        .iter()
                        .any(|(axis, label)| axis == "stage" && label == *stage)
            })
        })
        .map(|stage| format!("{name}: no non-empty {STAGE_METRIC:?} series for stage {stage:?}"))
        .collect()
}

fn main() -> ExitCode {
    let mut expected: Vec<String> = Vec::new();
    let mut stage_expected: Vec<String> = Vec::new();
    let mut floors: Vec<MetricFloor> = Vec::new();
    let mut dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--expect" => match args.next() {
                Some(id) => expected.push(id),
                None => {
                    eprintln!("--expect needs a report id");
                    return ExitCode::FAILURE;
                }
            },
            "--expect-benches" => match args.next() {
                Some(benches) => match bench_stems(&PathBuf::from(&benches)) {
                    Ok(stems) => {
                        println!(
                            "discovered {} expected ids from {benches}: {}",
                            stems.len(),
                            stems.join(", ")
                        );
                        expected.extend(stems);
                    }
                    Err(e) => {
                        eprintln!("FAIL: --expect-benches {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("--expect-benches needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--expect-stages" => match args.next() {
                Some(id) => stage_expected.push(id),
                None => {
                    eprintln!("--expect-stages needs a report id");
                    return ExitCode::FAILURE;
                }
            },
            "--min-metric" => match args.next().as_deref().map(parse_metric_floor) {
                Some(Ok(floor)) => floors.push(floor),
                Some(Err(e)) => {
                    eprintln!("--min-metric: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--min-metric needs <id>:<metric>:<min>");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: check_bench_json [--expect <id>]... [--expect-benches <dir>]... \
                     [--expect-stages <id>]... [--min-metric <id>:<metric>:<min>]... [dir]"
                );
                return ExitCode::SUCCESS;
            }
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let dir = dir.unwrap_or_else(|| PathBuf::from("bench-results"));

    let mut problems: Vec<String> = Vec::new();
    let mut seen: Vec<BenchReport> = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("FAIL: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();

    if paths.is_empty() {
        eprintln!("FAIL: no BENCH_*.json artifacts in {}", dir.display());
        return ExitCode::FAILURE;
    }

    for path in &paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                problems.push(format!("{name}: unreadable: {e}"));
                continue;
            }
        };
        match validate_artifact(name, &text, &floors) {
            Ok((report, confirmations)) => {
                for line in confirmations {
                    println!("{line}");
                }
                let samples: usize = report.metrics.iter().map(|m| m.samples.len()).sum();
                println!(
                    "ok   {name}: {} mode, {} metrics, {samples} samples",
                    report.mode.as_str(),
                    report.metrics.len()
                );
                seen.push(report);
            }
            Err(mut found) => problems.append(&mut found),
        }
    }

    for id in &expected {
        if !seen.iter().any(|r| r.id == *id) {
            problems.push(format!("expected artifact BENCH_{id}.json is missing"));
        }
    }

    for id in &stage_expected {
        match seen.iter().find(|r| r.id == *id) {
            Some(report) => {
                let name = report.file_name();
                let missing = stage_coverage_problems(&name, report);
                if missing.is_empty() {
                    println!("gate {name}: all {} stages attributed", STAGES.len());
                }
                problems.extend(missing);
            }
            None => problems.push(format!(
                "stage-gated artifact BENCH_{id}.json was never validated"
            )),
        }
    }

    for floor in &floors {
        if !seen.iter().any(|r| r.id == floor.id) && !expected.contains(&floor.id) {
            problems.push(format!(
                "gated artifact BENCH_{}.json was never validated",
                floor.id
            ));
        }
    }

    if problems.is_empty() {
        println!("all {} artifacts are schema-valid", paths.len());
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("FAIL {p}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netdsl_bench::report::Metric;

    fn fixture(id: &str) -> BenchReport {
        let mut r = BenchReport::new(id, "check_bench_json fixture");
        r.push(
            Metric::new("goodput", "bytes/1000ticks")
                .with_axis("protocol", "SW")
                .with_samples([10.5, 11.25, 13.0]),
        );
        r
    }

    fn with_stages(mut r: BenchReport) -> BenchReport {
        for stage in STAGES {
            r.push(
                Metric::new(STAGE_METRIC, "ns/op")
                    .with_axis("stage", stage)
                    .with_samples([50.0, 60.0]),
            );
        }
        r
    }

    #[test]
    fn parse_metric_floor_accepts_the_documented_form() {
        let floor = parse_metric_floor("E13:campaign_speedup:1.5").unwrap();
        assert_eq!(floor.id, "E13");
        assert_eq!(floor.metric, "campaign_speedup");
        assert_eq!(floor.min, 1.5);
    }

    #[test]
    fn parse_metric_floor_rejects_wrong_arity_and_bad_numbers() {
        assert!(parse_metric_floor("E13:campaign_speedup").is_err());
        assert!(parse_metric_floor("E13:a:b:1.5").is_err());
        assert!(parse_metric_floor("E13:campaign_speedup:fast").is_err());
    }

    #[test]
    fn bench_stems_discovers_sorted_rs_stems_and_rejects_empty_dirs() {
        let dir = std::env::temp_dir().join(format!("netdsl-stems-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for f in ["e2_b.rs", "e1_a.rs", "notes.txt"] {
            std::fs::write(dir.join(f), "").unwrap();
        }
        assert_eq!(bench_stems(&dir).unwrap(), vec!["e1_a", "e2_b"]);
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(bench_stems(&empty).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_artifacts_are_rejected() {
        assert!(validate_artifact("BENCH_x.json", "{ not json", &[]).is_err());
        // Schema-invalid (truncated stats) text also fails.
        let text = fixture("x").to_json_string().replace("10.5", "99.5");
        assert!(validate_artifact("BENCH_x.json", &text, &[]).is_err());
    }

    #[test]
    fn filename_id_mismatch_and_empty_reports_are_rejected() {
        let text = fixture("x").to_json_string();
        let problems = validate_artifact("BENCH_y.json", &text, &[]).unwrap_err();
        assert!(problems.iter().any(|p| p.contains("does not match")));

        let mut empty = fixture("x");
        empty.metrics.clear();
        let problems = validate_artifact("BENCH_x.json", &empty.to_json_string(), &[]).unwrap_err();
        assert!(problems.iter().any(|p| p.contains("no metrics")));
    }

    #[test]
    fn metric_floors_gate_means() {
        let text = fixture("x").to_json_string();
        let passing = parse_metric_floor("x:goodput:11").unwrap();
        let (_, confirmations) = validate_artifact("BENCH_x.json", &text, &[passing]).unwrap();
        assert_eq!(confirmations.len(), 1, "passing gate is confirmed");
        let failing = parse_metric_floor("x:goodput:12").unwrap();
        let problems = validate_artifact("BENCH_x.json", &text, &[failing]).unwrap_err();
        assert!(problems.iter().any(|p| p.contains("below the required")));
        let absent = parse_metric_floor("x:latency:1").unwrap();
        let problems = validate_artifact("BENCH_x.json", &text, &[absent]).unwrap_err();
        assert!(problems.iter().any(|p| p.contains("missing or empty")));
    }

    #[test]
    fn stage_labels_are_validated_unconditionally() {
        let good = with_stages(fixture("x"));
        assert!(validate_artifact("BENCH_x.json", &good.to_json_string(), &[]).is_ok());

        let mut typo = fixture("x");
        typo.push(
            Metric::new(STAGE_METRIC, "ns/op")
                .with_axis("stage", "encoed")
                .with_sample(1.0),
        );
        let problems = validate_artifact("BENCH_x.json", &typo.to_json_string(), &[]).unwrap_err();
        assert!(problems.iter().any(|p| p.contains("unknown stage label")));

        let mut wrong_name = fixture("x");
        wrong_name.push(
            Metric::new("latency", "ns/op")
                .with_axis("stage", "encode")
                .with_sample(1.0),
        );
        let problems =
            validate_artifact("BENCH_x.json", &wrong_name.to_json_string(), &[]).unwrap_err();
        assert!(problems.iter().any(|p| p.contains("only")));
    }

    #[test]
    fn stage_coverage_requires_every_stage_non_empty() {
        let full = with_stages(fixture("x"));
        assert!(stage_coverage_problems("BENCH_x.json", &full).is_empty());

        // Missing one stage.
        let mut partial = fixture("x");
        for stage in &STAGES[..STAGES.len() - 1] {
            partial.push(
                Metric::new(STAGE_METRIC, "ns/op")
                    .with_axis("stage", *stage)
                    .with_sample(1.0),
            );
        }
        let problems = stage_coverage_problems("BENCH_x.json", &partial);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains(STAGES[STAGES.len() - 1]));

        // Present but empty of samples is not coverage.
        let mut hollow = with_stages(fixture("x"));
        for m in hollow.metrics.iter_mut().filter(|m| m.name == STAGE_METRIC) {
            m.samples.clear();
        }
        assert_eq!(
            stage_coverage_problems("BENCH_x.json", &hollow).len(),
            STAGES.len()
        );
    }
}
