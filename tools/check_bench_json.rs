//! CI gate for benchmark artifacts: validates every
//! `bench-results/BENCH_*.json` against the shared report schema.
//!
//! ```text
//! cargo run -p netdsl-tools --bin check_bench_json -- \
//!     [--expect <id>]... [--expect-benches <benches-dir>]... \
//!     [--min-metric <id>:<metric>:<min>]... [dir]
//! ```
//!
//! Checks, per file: parses as a schema-valid
//! [`BenchReport`] (which re-derives
//! the `stats` blocks from the samples — a tampered or truncated
//! artifact fails), the id matches the file name, the report carries at
//! least one metric, and at least one metric carries samples.
//!
//! Expectations come in two forms. `--expect e4_arq_goodput`
//! (repeatable) names one required artifact id. `--expect-benches
//! crates/bench/benches` **discovers** the expected ids from the bench
//! target sources themselves — every `*.rs` file stem in the directory
//! becomes a required id — so adding a harness (E12, E13, …)
//! automatically extends the CI gate with no hardcoded list to forget;
//! a bench that stops emitting JSON fails the pipeline instead of
//! silently thinning the trajectory. Corollary: every `*.rs` file in
//! the benches directory is treated as a harness; bench-support helper
//! modules belong in the crate's `src/`, not alongside the targets.
//!
//! `--min-metric <id>:<metric>:<min>` (repeatable) additionally gates a
//! performance claim: the named report must carry the named metric and
//! its sample mean must be ≥ `min`. This is how the simcore speedup
//! gate (`--min-metric E13:campaign_speedup:1.5`) turns a regression of
//! the pooled engine against the pre-arena baseline into a red build.
//!
//! Exit code 0 when everything passes; 1 otherwise, after printing
//! every problem found.

use std::path::PathBuf;
use std::process::ExitCode;

use netdsl_bench::report::BenchReport;

/// Expected ids discovered from a benches directory: one per `*.rs`
/// file stem.
fn bench_stems(dir: &PathBuf) -> Result<Vec<String>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut stems: Vec<String> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .filter_map(|p| p.file_stem().and_then(|s| s.to_str()).map(String::from))
        .collect();
    stems.sort();
    if stems.is_empty() {
        return Err(format!("no *.rs bench targets in {}", dir.display()));
    }
    Ok(stems)
}

/// One `--min-metric` expectation: report `id` must carry `metric`
/// with a sample mean of at least `min`.
struct MetricFloor {
    id: String,
    metric: String,
    min: f64,
}

fn parse_metric_floor(spec: &str) -> Result<MetricFloor, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [id, metric, min] = parts[..] else {
        return Err(format!("expected <id>:<metric>:<min>, got {spec:?}"));
    };
    let min: f64 = min
        .parse()
        .map_err(|e| format!("bad minimum in {spec:?}: {e}"))?;
    Ok(MetricFloor {
        id: id.to_string(),
        metric: metric.to_string(),
        min,
    })
}

fn main() -> ExitCode {
    let mut expected: Vec<String> = Vec::new();
    let mut floors: Vec<MetricFloor> = Vec::new();
    let mut dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--expect" => match args.next() {
                Some(id) => expected.push(id),
                None => {
                    eprintln!("--expect needs a report id");
                    return ExitCode::FAILURE;
                }
            },
            "--expect-benches" => match args.next() {
                Some(benches) => match bench_stems(&PathBuf::from(&benches)) {
                    Ok(stems) => {
                        println!(
                            "discovered {} expected ids from {benches}: {}",
                            stems.len(),
                            stems.join(", ")
                        );
                        expected.extend(stems);
                    }
                    Err(e) => {
                        eprintln!("FAIL: --expect-benches {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("--expect-benches needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--min-metric" => match args.next().as_deref().map(parse_metric_floor) {
                Some(Ok(floor)) => floors.push(floor),
                Some(Err(e)) => {
                    eprintln!("--min-metric: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--min-metric needs <id>:<metric>:<min>");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: check_bench_json [--expect <id>]... [--expect-benches <dir>]... \
                     [--min-metric <id>:<metric>:<min>]... [dir]"
                );
                return ExitCode::SUCCESS;
            }
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let dir = dir.unwrap_or_else(|| PathBuf::from("bench-results"));

    let mut problems: Vec<String> = Vec::new();
    let mut seen: Vec<String> = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("FAIL: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();

    if paths.is_empty() {
        eprintln!("FAIL: no BENCH_*.json artifacts in {}", dir.display());
        return ExitCode::FAILURE;
    }

    for path in &paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                problems.push(format!("{name}: unreadable: {e}"));
                continue;
            }
        };
        let report = match BenchReport::from_json_str(&text) {
            Ok(report) => report,
            Err(e) => {
                problems.push(format!("{name}: {e}"));
                continue;
            }
        };
        let problems_before = problems.len();
        if format!("BENCH_{}.json", report.id) != name {
            problems.push(format!(
                "{name}: id {:?} does not match file name",
                report.id
            ));
        }
        if report.metrics.is_empty() {
            problems.push(format!("{name}: report carries no metrics"));
        } else if report.metrics.iter().all(|m| m.samples.is_empty()) {
            problems.push(format!("{name}: every metric is empty of samples"));
        }
        for floor in floors.iter().filter(|f| f.id == report.id) {
            let means: Vec<f64> = report
                .metrics
                .iter()
                .filter(|m| m.name == floor.metric && !m.samples.is_empty())
                .map(|m| m.samples.iter().sum::<f64>() / m.samples.len() as f64)
                .collect();
            if means.is_empty() {
                problems.push(format!(
                    "{name}: gated metric {:?} is missing or empty",
                    floor.metric
                ));
            } else if let Some(&low) = means
                .iter()
                .find(|&&mean| !(mean.is_finite() && mean >= floor.min))
            {
                problems.push(format!(
                    "{name}: {} mean {low:.3} is below the required {:.3}",
                    floor.metric, floor.min
                ));
            } else {
                println!(
                    "gate {name}: {} mean {:.3} ≥ {:.3}",
                    floor.metric,
                    means.iter().fold(f64::INFINITY, |a, &b| a.min(b)),
                    floor.min
                );
            }
        }
        if problems.len() == problems_before {
            let samples: usize = report.metrics.iter().map(|m| m.samples.len()).sum();
            println!(
                "ok   {name}: {} mode, {} metrics, {samples} samples",
                report.mode.as_str(),
                report.metrics.len()
            );
            seen.push(report.id);
        }
    }

    for id in &expected {
        if !seen.contains(id) {
            problems.push(format!("expected artifact BENCH_{id}.json is missing"));
        }
    }

    for floor in &floors {
        if !seen.contains(&floor.id) && !expected.contains(&floor.id) {
            problems.push(format!(
                "gated artifact BENCH_{}.json was never validated",
                floor.id
            ));
        }
    }

    if problems.is_empty() {
        println!("all {} artifacts are schema-valid", paths.len());
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("FAIL {p}");
        }
        ExitCode::FAILURE
    }
}
