//! Triage renderer for observability dumps: turns the canonical JSON
//! documents the `netdsl-obs` layer emits into aligned tables.
//!
//! ```text
//! cargo run -p netdsl-tools --bin obs_report -- <dump.json>...
//! ```
//!
//! Each file is dispatched on its `schema` field:
//!
//! * `netdsl-metrics/1` — a [`MetricsSnapshot`]: counters and gauges as
//!   a name/value table, histograms with count, sum, mean and their
//!   occupied log2 buckets rendered as value ranges;
//! * `netdsl-flight/1` — a [`FlightRecording`]: ring header (capacity,
//!   recorded, dropped), per-kind event counts, and the head and tail
//!   of the event sequence.
//!
//! Exit code 0 when every file rendered; 1 after printing what was
//! wrong with each file that did not (unreadable, unparseable, or an
//! unknown schema).

use std::process::ExitCode;

use netdsl_obs::{
    FlightRecording, HistogramSnapshot, MetricsSnapshot, FLIGHT_SCHEMA, METRICS_SCHEMA,
};
use serde::json::Value;

/// Events shown from each end of a flight recording.
const FLIGHT_HEAD_TAIL: usize = 8;

/// The value range a log2 bucket covers (bucket 0 is exactly zero,
/// bucket `k > 0` is `[2^(k-1), 2^k)`).
fn bucket_range(k: u32) -> String {
    if k == 0 {
        "0".to_string()
    } else {
        format!("{}..{}", 1u128 << (k - 1), 1u128 << k)
    }
}

fn render_histogram(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h
        .buckets
        .iter()
        .map(|&(k, n)| format!("[{}]={n}", bucket_range(k)))
        .collect();
    format!(
        "  {:<26} count {:<8} sum {:<10} mean {:<8.1} {}\n",
        h.name,
        h.count,
        h.sum,
        h.mean(),
        buckets.join(" ")
    )
}

fn render_metrics(name: &str, snap: &MetricsSnapshot) -> String {
    let mut out = format!(
        "{name}: metrics snapshot ({} counters, {} gauges, {} histograms)\n",
        snap.counters.len(),
        snap.gauges.len(),
        snap.histograms.len()
    );
    if !snap.counters.is_empty() {
        out.push_str("\n  counter                    value\n");
        for (metric, value) in &snap.counters {
            out.push_str(&format!("  {metric:<26} {value}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("\n  gauge                      level\n");
        for (metric, level) in &snap.gauges {
            out.push_str(&format!("  {metric:<26} {level}\n"));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("\n  histogram                  (bucket ranges are [2^(k-1), 2^k))\n");
        for h in &snap.histograms {
            out.push_str(&render_histogram(h));
        }
    }
    out
}

/// Decodes a fault event's `detail` discriminant (the encoding the
/// fault engine documents on [`netdsl_obs::FlightKind::Fault`]).
fn fault_action(detail: u64) -> &'static str {
    match detail {
        1 => "link reconfigured",
        2 => "node crashed",
        3 => "node restarted",
        4 => "clock skewed",
        _ => "unknown action",
    }
}

fn render_flight(name: &str, flight: &FlightRecording) -> String {
    let mut out = format!(
        "{name}: flight recording (capacity {}, recorded {}, dropped {})\n",
        flight.capacity, flight.recorded, flight.dropped
    );
    if flight.dropped > 0 {
        out.push_str(&format!(
            "  NOTE: ring overflowed — the oldest {} events were overwritten\n",
            flight.dropped
        ));
    }
    out.push_str("\n  kind         count\n");
    for (kind, count) in flight.kind_counts() {
        if count > 0 {
            out.push_str(&format!("  {:<12} {count}\n", kind.as_str()));
        }
    }
    let shown = |out: &mut String, range: &[netdsl_obs::FlightEvent]| {
        for e in range {
            out.push_str(&format!(
                "  t={:<8} {:<12} subject={:<6} detail={}\n",
                e.at,
                e.kind.as_str(),
                e.subject,
                e.detail
            ));
        }
    };
    // Faults are rare, load-bearing events: even when the ring elides
    // the middle of the sequence below, the full fault timeline is
    // worth its own table.
    let faults: Vec<&netdsl_obs::FlightEvent> = flight
        .events
        .iter()
        .filter(|e| e.kind == netdsl_obs::FlightKind::Fault)
        .collect();
    if !faults.is_empty() {
        out.push_str("\n  fault timeline:\n");
        for e in &faults {
            out.push_str(&format!(
                "  t={:<8} {:<18} target={}\n",
                e.at,
                fault_action(e.detail),
                e.subject
            ));
        }
    }
    let n = flight.events.len();
    if n <= 2 * FLIGHT_HEAD_TAIL {
        out.push_str(&format!("\n  all {n} events:\n"));
        shown(&mut out, &flight.events);
    } else {
        out.push_str(&format!("\n  first {FLIGHT_HEAD_TAIL} of {n} events:\n"));
        shown(&mut out, &flight.events[..FLIGHT_HEAD_TAIL]);
        out.push_str(&format!(
            "  … {} elided …\n  last {FLIGHT_HEAD_TAIL} events:\n",
            n - 2 * FLIGHT_HEAD_TAIL
        ));
        shown(&mut out, &flight.events[n - FLIGHT_HEAD_TAIL..]);
    }
    out
}

/// Renders one dump, dispatching on its `schema` member.
fn render(name: &str, text: &str) -> Result<String, String> {
    let v = Value::parse(text).map_err(|e| format!("{name}: bad JSON: {e}"))?;
    match v.get("schema").and_then(Value::as_str) {
        Some(METRICS_SCHEMA) => {
            let snap = MetricsSnapshot::from_json(&v).map_err(|e| format!("{name}: {e}"))?;
            Ok(render_metrics(name, &snap))
        }
        Some(FLIGHT_SCHEMA) => {
            let flight = FlightRecording::from_json(&v).map_err(|e| format!("{name}: {e}"))?;
            Ok(render_flight(name, &flight))
        }
        Some(other) => Err(format!(
            "{name}: unknown schema {other:?} (renderable: {METRICS_SCHEMA:?}, {FLIGHT_SCHEMA:?})"
        )),
        None => Err(format!("{name}: missing schema member")),
    }
}

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() || files.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: obs_report <dump.json>...");
        println!("renders netdsl-metrics/1 and netdsl-flight/1 dumps as triage tables");
        return if files.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let mut failed = false;
    for (i, file) in files.iter().enumerate() {
        if i > 0 {
            println!();
        }
        let rendered = std::fs::read_to_string(file)
            .map_err(|e| format!("{file}: unreadable: {e}"))
            .and_then(|text| render(file, &text));
        match rendered {
            Ok(table) => print!("{table}"),
            Err(problem) => {
                eprintln!("FAIL {problem}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn fixture(name: &str) -> String {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("testdata")
            .join(name);
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: fixture unreadable: {e}", path.display()))
    }

    #[test]
    fn metrics_fixture_renders_counters_and_histograms() {
        let out = render("metrics_snapshot.json", &fixture("metrics_snapshot.json")).unwrap();
        assert!(out.contains("metrics snapshot"));
        assert!(out.contains("sim.frames_sent"), "counter table:\n{out}");
        assert!(out.contains("arq.retransmissions"));
        assert!(out.contains("sim.frame_bytes"), "histogram row:\n{out}");
        assert!(out.contains("mean"), "histogram stats:\n{out}");
    }

    #[test]
    fn flight_fixture_renders_kind_counts_and_events() {
        let out = render("flight_recording.json", &fixture("flight_recording.json")).unwrap();
        assert!(out.contains("flight recording"));
        assert!(out.contains("dropped 0"));
        for kind in ["send", "deliver", "drop", "timer_set", "arq_timeout"] {
            assert!(out.contains(kind), "kind table must list {kind}:\n{out}");
        }
        assert!(out.contains("t=0"), "event rows:\n{out}");
    }

    #[test]
    fn fault_fixture_renders_the_fault_timeline() {
        let out = render("fault_flight.json", &fixture("fault_flight.json")).unwrap();
        assert!(out.contains("fault timeline:"), "timeline section:\n{out}");
        for action in [
            "node crashed",
            "node restarted",
            "clock skewed",
            "link reconfigured",
        ] {
            assert!(
                out.contains(action),
                "timeline must decode {action}:\n{out}"
            );
        }
        // The timeline carries the one-event-overshoot timestamps the
        // fault engine actually applied (crash scheduled at 15 lands on
        // the first event past it).
        assert!(out.contains("t=18       node crashed"), "{out}");
    }

    #[test]
    fn faultless_recordings_render_no_timeline() {
        let out = render("flight_recording.json", &fixture("flight_recording.json")).unwrap();
        assert!(!out.contains("fault timeline"), "{out}");
    }

    #[test]
    fn log2_buckets_render_as_value_ranges() {
        assert_eq!(bucket_range(0), "0");
        assert_eq!(bucket_range(1), "1..2");
        assert_eq!(bucket_range(5), "16..32");
    }

    #[test]
    fn unknown_schemas_and_bad_json_are_refused() {
        assert!(render("x", "{ not json").is_err());
        assert!(render("x", "{\"schema\": \"netdsl-bench/1\"}")
            .unwrap_err()
            .contains("unknown schema"));
        assert!(render("x", "{}").unwrap_err().contains("missing schema"));
    }
}
