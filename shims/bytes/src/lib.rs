//! Offline stand-in for the `bytes` crate.
//!
//! Implements the slice-of-bytes containers the netdsl workspace uses:
//! [`BytesMut`] (growable, mutable) and [`Bytes`] (immutable, cheaply
//! cloneable via `Arc`). Zero-copy slicing of sub-ranges is not provided —
//! `netdsl-wire` only freezes whole buffers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A growable byte buffer under construction.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Appends `data` to the end of the buffer.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.vec.extend_from_slice(data);
    }

    /// Converts into an immutable, cheaply-cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.vec),
        }
    }

    /// Copies the contents into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.vec.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut { vec: data.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> Self {
        BytesMut { vec }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.vec {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// An immutable byte string; clones share one allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Copies the contents into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(vec),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytesmut_roundtrip() {
        let mut b = BytesMut::with_capacity(4);
        b.extend_from_slice(&[1, 2]);
        b.extend_from_slice(&[3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        b[0] = 9;
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[9, 2, 3]);
        let clone = frozen.clone();
        assert_eq!(clone, frozen);
    }

    #[test]
    fn from_slice_and_vec() {
        let m = BytesMut::from(&[5u8, 6][..]);
        assert_eq!(m.to_vec(), vec![5, 6]);
        let b = Bytes::from(vec![7u8, 8]);
        assert_eq!(b.to_vec(), vec![7, 8]);
        assert!(Bytes::new().is_empty());
    }
}
