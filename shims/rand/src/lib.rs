//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! exact API surface the netdsl workspace uses — [`RngCore`], [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`] and integer/bool sampling — with the
//! `rand 0.9` method names (`random_range`, `random_bool`). The generators
//! are deterministic, seedable, and of scientific-simulation quality
//! (SplitMix64 seeding into xoshiro256++), but this is **not** a
//! cryptographic library and makes no distribution-exactness claims beyond
//! what the workspace's tests need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

/// Low-level uniform bit source. Mirrors `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// distinct `state` values give unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let chunk = sm.next().to_le_bytes();
            let n = (bytes.len() - i).min(8);
            bytes[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 random bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled from. Mirrors `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `bound` via Lemire-style rejection (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

/// SplitMix64: used to expand `u64` seeds into full seed material.
pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let z: usize = rng.random_range(0..=0);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let heads = (0..2000).filter(|_| rng.random_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "got {heads}/2000 heads");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
