//! Value-generation strategies.

use std::fmt;
use std::marker::PhantomData;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for producing random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// returns a finished value directly.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: fmt::Debug;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type behind a cheap-to-clone handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy {
            gen_fn: Rc::new(move |rng| inner.generate(rng)),
        }
    }

    /// Builds recursive values: `self` is the leaf strategy, and `f` wraps
    /// an inner strategy into one producing branch nodes. Recursion is
    /// bounded by `depth`; `_desired_size` and `_expected_branch_size` are
    /// accepted for API compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = f(current).boxed();
            let leaf = leaf.clone();
            current = BoxedStrategy {
                gen_fn: Rc::new(move |rng: &mut TestRng| {
                    // Lean towards leaves so expected size stays small.
                    if rng.below(3) == 0 {
                        deeper.generate(rng)
                    } else {
                        leaf.generate(rng)
                    }
                }),
            };
        }
        current
    }
}

/// Type-erased, cheaply-cloneable strategy handle.
pub struct BoxedStrategy<V> {
    gen_fn: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen_fn: Rc::clone(&self.gen_fn),
        }
    }
}

impl<V: fmt::Debug> fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen_fn)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Equal-weight choice among strategies of one value type
/// (the expansion of [`crate::prop_oneof!`]).
#[derive(Debug, Clone)]
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: fmt::Debug> Union<V> {
    /// A union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Full-range strategy for a primitive type; see [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T> fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Any")
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        any()
    }
}

/// Produces any value of `T` (full range for integers).
pub fn any<T>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + rng.below(0x5F) as u8) as char
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_pattern(self, rng)
    }
}
