//! Test configuration, RNG and failure plumbing.

use std::fmt;

/// Per-test configuration. Only `cases` is meaningful in the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable via the `PROPTEST_CASES` environment variable
    /// (keeps `cargo test` fast on CI; raise locally for soak runs).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    rejected: bool,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejected: false,
        }
    }

    /// A rejection (`prop_assume!` miss): the case is skipped, not failed.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejected: true,
        }
    }

    /// `true` for rejections, `false` for genuine failures.
    pub fn is_rejection(&self) -> bool {
        self.rejected
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The generator driving value production: xoshiro256++ seeded from the
/// test's fully-qualified name (or `PROPTEST_SEED` when set), so runs are
/// reproducible without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let seed = match std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            Some(s) => s ^ fnv1a(name.as_bytes()),
            None => fnv1a(name.as_bytes()),
        };
        Self::from_seed_u64(seed)
    }

    /// Builds the RNG from an explicit seed.
    pub fn from_seed_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        TestRng {
            s: if s == [0; 4] { [1, 2, 3, 4] } else { s },
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    hash
}
