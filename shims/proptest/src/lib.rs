//! Offline stand-in for the `proptest` crate.
//!
//! Implements the property-testing surface the netdsl workspace uses:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), integer/bool
//! [`prelude::any`], range and tuple strategies, [`collection::vec`],
//! `prop_map`, `prop_oneof!`, `prop_recursive`, simple string-pattern
//! strategies, and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs verbatim;
//! * **deterministic seeding** — each test's RNG is seeded from the hash of
//!   its module path and name, so failures reproduce across runs (override
//!   with the `PROPTEST_SEED` environment variable);
//! * **case count** — defaults to 64, override per-test with
//!   `ProptestConfig::with_cases` or globally with `PROPTEST_CASES`;
//! * string strategies accept only the literal/class/repeat regex subset
//!   (`[a-z0-9]{0,24}`-shaped patterns).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Defines property tests.
///
/// Supports an optional leading `#![proptest_config(expr)]`, then any
/// number of test functions of the form
/// `#[test] fn name(arg in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    if e.is_rejection() {
                        continue;
                    }
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1, config.cases, e, inputs,
                    );
                }
            }
        }
        $crate::__proptest_fns!{ [$cfg] $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with
/// its inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two values are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), left, right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), left, right,
                ),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds (the shim moves on to the
/// next case; there is no global rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Asserts two values are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// Chooses among several strategies with equal weight. All operands must
/// yield the same `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u8..10, y in -4i64..=4, n in 0usize..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!(n < 5);
        }

        /// Vec strategies respect their size range and element strategy.
        #[test]
        fn vec_sizes(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        /// Tuples, maps and oneof compose.
        #[test]
        fn composition(pair in (any::<bool>(), 0u16..9), tagged in prop_oneof![
            (0u8..3).prop_map(|v| v as u64),
            Just(99u64),
        ]) {
            prop_assert!(pair.1 < 9);
            prop_assert!(tagged < 3 || tagged == 99);
        }

        /// String pattern strategies honour class and repetition.
        #[test]
        fn string_patterns(s in "[a-c]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        /// Default config: recursion terminates and stays well-typed.
        #[test]
        fn recursion_bounded(v in (0u8..10).prop_map(Leaf).prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Node)
        })) {
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 1,
                    Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
                }
            }
            prop_assert!(depth(&v) <= 4);
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }
    use Tree::{Leaf, Node};
}
