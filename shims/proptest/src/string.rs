//! String generation from a small regex subset.
//!
//! Real proptest compiles full regexes into strategies; this shim supports
//! the subset the workspace's tests use: literal characters, character
//! classes `[a-z0-9_ ]` (ranges and singletons, no negation), and the
//! repetition suffixes `{n}`, `{m,n}`, `?`, `*`, `+` (unbounded repeats are
//! capped at 8). Unsupported syntax panics at test time with a clear
//! message rather than generating wrong data.

use crate::test_runner::TestRng;

enum Atom {
    /// One of these characters.
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset.
pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let span = (piece.max - piece.min) as u64;
        let count = piece.min
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        for _ in 0..count {
            match &piece.atom {
                Atom::Class(chars) => {
                    out.push(chars[rng.below(chars.len() as u64) as usize]);
                }
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"))
                    + i;
                let set = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                Atom::Class(set)
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("trailing '\\' in pattern {pattern:?}"));
                i += 2;
                Atom::Class(vec![c])
            }
            '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!("unsupported regex syntax {:?} in pattern {pattern:?} (shim supports literals, classes, and repetition only)", chars[i])
            }
            c => {
                i += 1;
                Atom::Class(vec![c])
            }
        };
        let (min, max) = parse_repeat(&chars, &mut i, pattern);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(
        body.first() != Some(&'^'),
        "negated classes unsupported in pattern {pattern:?}"
    );
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
    set
}

/// Parses an optional repetition suffix at `*i`, advancing past it.
fn parse_repeat(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    const UNBOUNDED_CAP: usize = 8;
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"))
                + *i;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            if let Some((lo, hi)) = body.split_once(',') {
                let lo = lo.trim().parse().unwrap_or_else(|_| bad_repeat(pattern));
                let hi = if hi.trim().is_empty() {
                    lo + UNBOUNDED_CAP
                } else {
                    hi.trim().parse().unwrap_or_else(|_| bad_repeat(pattern))
                };
                assert!(lo <= hi, "inverted repeat range in pattern {pattern:?}");
                (lo, hi)
            } else {
                let n = body.trim().parse().unwrap_or_else(|_| bad_repeat(pattern));
                (n, n)
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            *i += 1;
            (1, UNBOUNDED_CAP)
        }
        _ => (1, 1),
    }
}

fn bad_repeat(pattern: &str) -> usize {
    panic!("malformed repetition in pattern {pattern:?}")
}
