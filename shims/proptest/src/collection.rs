//! Collection strategies.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A range of collection sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: fmt::Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
