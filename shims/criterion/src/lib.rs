//! Offline stand-in for the `criterion` crate.
//!
//! Provides the harness surface the netdsl benches use — groups,
//! parameterised benchmark IDs, throughput annotation, `Bencher::iter` —
//! with a simple measurement loop: warm up briefly, then time batches
//! until a fixed measurement budget elapses and report the mean per
//! iteration (plus derived throughput). No statistics, plots, or baseline
//! files; swapping in real criterion requires no source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Write as _};
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness handle; one per `criterion_group!` run.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup { throughput: None }
    }

    /// Measures a single standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, &mut f);
        self
    }
}

/// A group of measurements sharing a name prefix and throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup {
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the throughput used to derive rates for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures `f` with `input` passed through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), self.throughput.clone(), &mut |b| {
            f(b, input)
        });
        self
    }

    /// Measures a function within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.throughput.clone(), &mut f);
        self
    }

    /// Ends the group (reporting happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// Units of work per iteration, for derived rates.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A benchmark name with an attached parameter value.
#[derive(Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an ID like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Handed to the closure; calls back into the timing loop.
#[derive(Debug)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: establish a per-iteration estimate.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < WARMUP {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos().max(1) as u64 / warmup_iters.max(1);
        let batch = (MEASURE.as_nanos() as u64 / per_iter.max(1)).clamp(1, 1_000_000);

        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = batch;
    }
}

const WARMUP: Duration = Duration::from_millis(20);
const MEASURE: Duration = Duration::from_millis(80);

fn run_one(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter_ns = if bencher.iters_done == 0 {
        0.0
    } else {
        bencher.elapsed.as_nanos() as f64 / bencher.iters_done as f64
    };
    let mut line = String::new();
    write!(line, "  {name:<40} {:>12}/iter", format_ns(per_iter_ns)).expect("write to String");
    if per_iter_ns > 0.0 {
        match throughput {
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / (per_iter_ns / 1e9) / (1024.0 * 1024.0);
                write!(line, " {rate:>10.1} MiB/s").expect("write to String");
            }
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / (per_iter_ns / 1e9);
                write!(line, " {rate:>10.0} elem/s").expect("write to String");
            }
            None => {}
        }
    }
    println!("{line}");
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_smoke");
        g.throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(21) * 2));
    }

    #[test]
    fn id_formats_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("enc", 1024).to_string(), "enc/1024");
    }
}
