//! Offline stand-in for the `criterion` crate.
//!
//! Provides the harness surface the netdsl benches use — groups,
//! parameterised benchmark IDs, throughput annotation, `Bencher::iter` —
//! with a simple measurement loop: warm up briefly, then time a handful
//! of batches and report the mean per iteration (plus derived
//! throughput). No plots or baseline files; swapping in real criterion
//! requires no source changes.
//!
//! Two extensions beyond upstream criterion's surface serve the
//! workspace's benchmark-report subsystem (see `docs/BENCHMARKS.md`):
//!
//! * every measurement is also recorded in a process-wide sink, and the
//!   `criterion_main!`-generated `main` serializes the collected metrics
//!   to `bench-results/BENCH_<id>.json` in the shared benchmark-report
//!   schema (via the serde shim's JSON model);
//! * setting `BENCH_QUICK=1` shrinks the warm-up and measurement
//!   budgets so a full `cargo bench` sweep fits in CI smoke time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Write as _};
use std::hint::black_box as std_black_box;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::json::Value;

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One recorded measurement, queued for the JSON report.
struct MetricRecord {
    group: Option<String>,
    name: String,
    /// Per-batch mean nanoseconds per iteration.
    samples: Vec<f64>,
    throughput: Option<Throughput>,
}

/// Process-wide sink the `criterion_main!`-generated `main` drains.
static SINK: Mutex<Vec<MetricRecord>> = Mutex::new(Vec::new());

/// `true` when `BENCH_QUICK` requests the CI-sized measurement budget.
pub fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Top-level harness handle; one per `criterion_group!` run.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup {
            name,
            throughput: None,
        }
    }

    /// Measures a single standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, name, None, &mut f);
        self
    }
}

/// A group of measurements sharing a name prefix and throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the throughput used to derive rates for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures `f` with `input` passed through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            Some(&self.name),
            &id.to_string(),
            self.throughput.clone(),
            &mut |b| f(b, input),
        );
        self
    }

    /// Measures a function within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), name, self.throughput.clone(), &mut f);
        self
    }

    /// Ends the group (reporting happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// Units of work per iteration, for derived rates.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A benchmark name with an attached parameter value.
#[derive(Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an ID like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Handed to the closure; calls back into the timing loop.
#[derive(Debug)]
pub struct Bencher {
    /// Mean nanoseconds per iteration of each measured batch.
    batch_means_ns: Vec<f64>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let (warmup, measure, batches) = if quick_mode() {
            (QUICK_WARMUP, QUICK_MEASURE, 2usize)
        } else {
            (WARMUP, MEASURE, 4usize)
        };

        // Warm-up: establish a per-iteration estimate.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < warmup {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos().max(1) as u64 / warmup_iters.max(1);
        let budget_per_batch = measure.as_nanos() as u64 / batches as u64;
        let batch = (budget_per_batch / per_iter.max(1)).clamp(1, 1_000_000);

        self.batch_means_ns.clear();
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.batch_means_ns
                .push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.batch_means_ns.is_empty() {
            0.0
        } else {
            self.batch_means_ns.iter().sum::<f64>() / self.batch_means_ns.len() as f64
        }
    }
}

const WARMUP: Duration = Duration::from_millis(20);
const MEASURE: Duration = Duration::from_millis(80);
const QUICK_WARMUP: Duration = Duration::from_millis(3);
const QUICK_MEASURE: Duration = Duration::from_millis(10);

fn run_one(
    group: Option<&str>,
    name: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        batch_means_ns: Vec::new(),
    };
    f(&mut bencher);
    let per_iter_ns = bencher.mean_ns();
    let mut line = String::new();
    write!(line, "  {name:<40} {:>12}/iter", format_ns(per_iter_ns)).expect("write to String");
    if per_iter_ns > 0.0 {
        match &throughput {
            Some(Throughput::Bytes(n)) => {
                let rate = *n as f64 / (per_iter_ns / 1e9) / (1024.0 * 1024.0);
                write!(line, " {rate:>10.1} MiB/s").expect("write to String");
            }
            Some(Throughput::Elements(n)) => {
                let rate = *n as f64 / (per_iter_ns / 1e9);
                write!(line, " {rate:>10.0} elem/s").expect("write to String");
            }
            None => {}
        }
    }
    println!("{line}");
    SINK.lock().expect("sink lock").push(MetricRecord {
        group: group.map(str::to_string),
        name: name.to_string(),
        samples: bencher.batch_means_ns.clone(),
        throughput,
    });
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Nearest-rank percentile over ascending-sorted samples — the same
/// definition as `netdsl-netsim`'s `stats::Aggregate`, so shim-emitted
/// stats blocks agree with report-layer recomputation.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

fn stats_value(samples: &[f64]) -> Value {
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|s| s.is_finite()).collect();
    sorted.sort_by(f64::total_cmp);
    let mean = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / sorted.len() as f64
    };
    Value::object()
        .set("count", sorted.len())
        .set("mean", mean)
        .set("min", sorted.first().copied().unwrap_or(0.0))
        .set("max", sorted.last().copied().unwrap_or(0.0))
        .set("p50", percentile(&sorted, 50.0))
        .set("p90", percentile(&sorted, 90.0))
        .set("p99", percentile(&sorted, 99.0))
}

/// Where `BENCH_<id>.json` artifacts go: `$BENCH_RESULTS_DIR` when set,
/// else `bench-results/` under the nearest ancestor holding `Cargo.lock`
/// (cargo runs bench binaries with the *package* directory as cwd).
fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("BENCH_RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("bench-results");
        }
        if !dir.pop() {
            return PathBuf::from("bench-results");
        }
    }
}

/// Serializes every measurement recorded so far to
/// `bench-results/BENCH_<id>.json` in the shared benchmark-report
/// schema, draining the sink. Called by the `criterion_main!`-generated
/// `main`; `id` is the bench target name (`CARGO_CRATE_NAME`).
///
/// A write failure panics: a benchmark run whose artifact vanished
/// silently would defeat the CI gate the artifact exists for.
pub fn write_bench_report(id: &str) {
    let records = std::mem::take(&mut *SINK.lock().expect("sink lock"));
    let metrics: Vec<Value> = records
        .iter()
        .map(|r| {
            let name = match &r.group {
                Some(group) => format!("{group}/{}", r.name),
                None => r.name.clone(),
            };
            let mean_ns = if r.samples.is_empty() {
                0.0
            } else {
                r.samples.iter().sum::<f64>() / r.samples.len() as f64
            };
            let throughput = match &r.throughput {
                Some(Throughput::Bytes(n)) if mean_ns > 0.0 => Value::object()
                    .set("unit", "bytes/s")
                    .set("rate", *n as f64 / (mean_ns / 1e9)),
                Some(Throughput::Elements(n)) if mean_ns > 0.0 => Value::object()
                    .set("unit", "elements/s")
                    .set("rate", *n as f64 / (mean_ns / 1e9)),
                _ => Value::Null,
            };
            Value::object()
                .set("name", name)
                .set("unit", "ns/iter")
                .set("axes", Value::object())
                .set(
                    "samples",
                    Value::Array(r.samples.iter().map(|&s| Value::Number(s)).collect()),
                )
                .set("stats", stats_value(&r.samples))
                .set("throughput", throughput)
        })
        .collect();
    let report = Value::object()
        .set("schema", "netdsl-bench/1")
        .set("id", id)
        .set("title", id)
        .set("mode", if quick_mode() { "quick" } else { "full" })
        .set("metrics", Value::Array(metrics));

    let dir = results_dir();
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("create bench-results dir {}: {e}", dir.display()));
    let path = dir.join(format!("BENCH_{id}.json"));
    std::fs::write(&path, report.to_string_pretty())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("\nwrote {}", path.display());
}

/// Declares a group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups, mirroring criterion's
/// macro, then writing the collected measurements as a
/// `BENCH_<bench-name>.json` report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_bench_report(env!("CARGO_CRATE_NAME"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_smoke");
        g.throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(21) * 2));
        // Both runs landed in the sink with at least one sample each.
        let sink = SINK.lock().unwrap();
        let ours: Vec<_> = sink
            .iter()
            .filter(|r| r.group.as_deref() == Some("shim_smoke") || r.name == "standalone")
            .collect();
        assert_eq!(ours.len(), 2);
        assert!(ours.iter().all(|r| !r.samples.is_empty()));
    }

    #[test]
    fn id_formats_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("enc", 1024).to_string(), "enc/1024");
    }

    #[test]
    fn stats_block_matches_nearest_rank() {
        let v = stats_value(&[30.0, 10.0, 20.0]);
        assert_eq!(v.get("count").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("mean").and_then(Value::as_f64), Some(20.0));
        assert_eq!(v.get("min").and_then(Value::as_f64), Some(10.0));
        assert_eq!(v.get("p50").and_then(Value::as_f64), Some(20.0));
        assert_eq!(v.get("p99").and_then(Value::as_f64), Some(30.0));
    }
}
