//! Offline stand-in for `serde_derive`.
//!
//! Emits marker implementations of the shim `serde::Serialize` /
//! `serde::Deserialize` traits. Supports plain (non-generic) structs and
//! enums, which is all the netdsl workspace derives on; deriving on a
//! generic type is a compile error with a clear message rather than a
//! silently wrong impl.

use proc_macro::{TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Ok(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the shim `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Ok(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Extracts the type name from a `struct`/`enum`/`union` item, rejecting
/// generic types (the shim cannot know the right bounds).
fn type_name(input: TokenStream) -> Result<String, String> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    let name = match iter.next() {
                        Some(TokenTree::Ident(name)) => name.to_string(),
                        other => {
                            return Err(format!("expected type name after `{kw}`, got {other:?}"))
                        }
                    };
                    if let Some(TokenTree::Punct(p)) = iter.peek() {
                        if p.as_char() == '<' {
                            return Err(format!(
                                "serde shim derive does not support generic type `{name}`"
                            ));
                        }
                    }
                    return Ok(name);
                }
                // `pub`, `pub(crate)`, etc. — keep scanning.
            }
            _ => {}
        }
    }
    Err("serde shim derive: no struct/enum found in input".to_string())
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}
