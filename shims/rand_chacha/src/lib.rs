//! Offline stand-in for the `rand_chacha` crate.
//!
//! Provides [`ChaCha12Rng`]: a real ChaCha keystream generator (12 rounds,
//! RFC 8439 quarter-round) driving the shim `rand` traits. Deterministic and
//! portable; the stream is *not* guaranteed to be bit-identical to the real
//! `rand_chacha` crate's (which permutes output words differently), only to
//! itself across platforms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A ChaCha keystream generator with 12 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..6 {
            // 6 double-rounds = 12 rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = state[i].wrapping_add(initial[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha12Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        let mut c = ChaCha12Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..40).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..40).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..40).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_crosses_block_boundaries() {
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        // 40 u64s = 80 words = 5 blocks; must not repeat block 0.
        let words: Vec<u64> = (0..40).map(|_| rng.next_u64()).collect();
        let first_block = &words[..8];
        assert_ne!(first_block, &words[8..16]);
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        for _ in 0..100 {
            let v = rng.random_range(0..10u64);
            assert!(v < 10);
        }
    }
}
