//! Offline stand-in for the `serde` crate.
//!
//! The netdsl workspace wires `serde` for tooling interoperability (specs
//! can be stored/exchanged once the real crate is swapped in), but the
//! build environment has no registry access. This shim keeps the trait
//! bounds and `#[derive(Serialize, Deserialize)]` attributes compiling:
//! the traits are markers with no methods, and the derive macros emit
//! empty impls. Replacing the `serde` entry in `[workspace.dependencies]`
//! with the real crate requires no source changes.
//!
//! The [`json`] module is the shim's stand-in for `serde_json`: an owned
//! [`Value`](json::Value) tree with a serializer and a strict parser.
//! The benchmark-report layer (`netdsl-bench::report` and the criterion
//! shim's JSON sink) serializes through it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Marker for types that can be serialized (shim: no data model).
pub trait Serialize {}

/// Marker for types that can be deserialized (shim: no data model).
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, char, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
