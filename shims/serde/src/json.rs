//! A minimal JSON data model: the shim's stand-in for `serde_json`.
//!
//! [`Value`] is an owned JSON tree with a serializer ([`fmt::Display`] /
//! [`Value::to_string_pretty`]) and a strict recursive-descent parser
//! ([`Value::parse`]). Object member order is preserved (insertion
//! order), so serialize → parse → serialize is the identity on the
//! text as well as the tree.
//!
//! Design constraints inherited from the workspace:
//!
//! * numbers are `f64` (like `serde_json`'s default arithmetic view);
//!   integers above 2⁵³ lose precision and should be carried as strings;
//! * non-finite numbers serialize as `null` — JSON has no spelling for
//!   them, and the workspace's statistics layer already filters
//!   non-finite samples;
//! * parsing is resource-bounded (nesting depth ≤ 64) so the CI checker
//!   can be pointed at arbitrary files safely.

use std::fmt;

/// Maximum container nesting the parser accepts.
const MAX_DEPTH: usize = 64;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; members keep insertion order and may not repeat keys
    /// (the parser rejects duplicates).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object, ready for [`Value::set`] chaining.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Adds or replaces a member (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object — that is a construction bug,
    /// not a data condition.
    #[must_use]
    pub fn set(mut self, key: impl Into<String>, value: impl Into<Value>) -> Value {
        let Value::Object(members) = &mut self else {
            panic!("Value::set on a non-object");
        };
        let key = key.into();
        let value = value.into();
        match members.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => members.push((key, value)),
        }
        self
    }

    /// Member lookup on objects (`None` for other variants or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, when it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the format the benchmark artifacts are written in.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) if n.is_finite() => {
                // `f64::Display` is the shortest decimal that round-trips
                // exactly, and never uses exponent notation — valid JSON.
                use fmt::Write as _;
                write!(out, "{n}").expect("write to String");
            }
            Value::Number(_) => out.push_str("null"),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_container(out, indent, '[', ']', items.len(), |out, i, inner| {
                    items[i].write(out, inner);
                })
            }
            Value::Object(members) => {
                write_container(out, indent, '{', '}', members.len(), |out, i, inner| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if inner.is_some() {
                        out.push(' ');
                    }
                    v.write(out, inner);
                })
            }
        }
    }

    /// Parses a complete JSON document (surrounding whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(value)
    }
}

fn write_container(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|i| i + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(depth) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(depth));
        }
        item(out, i, inner);
    }
    if let Some(depth) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(f64::from(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}

/// A parse failure: byte offset plus a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(lead) => {
                    // Consume one UTF-8 scalar. The input arrived as a
                    // &str, so the encoding is valid and the lead byte
                    // alone determines the scalar's length — decode
                    // from exactly that window (O(1) per character; a
                    // whole-remainder revalidation here would make long
                    // strings quadratic).
                    let len = match lead {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let scalar = std::str::from_utf8(&self.bytes[self.pos..self.pos + len])
                        .expect("input was a &str");
                    out.push_str(scalar);
                    self.pos += len;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Surrogate pairs: a high surrogate must be followed by an
        // escaped low surrogate, together naming one scalar value.
        if (0xD800..0xDC00).contains(&first) {
            if self.bytes[self.pos..].first() != Some(&b'\\')
                || self.bytes[self.pos + 1..].first() != Some(&b'u')
            {
                return Err(self.err("high surrogate without a following \\u escape"));
            }
            self.pos += 2;
            let second = self.hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.err("high surrogate not followed by a low surrogate"));
            }
            let scalar = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            return char::from_u32(scalar).ok_or_else(|| self.err("invalid surrogate pair"));
        }
        char::from_u32(first).ok_or_else(|| self.err("lone low surrogate"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        // RFC 8259 grammar, checked explicitly — Rust's `f64::parse`
        // is laxer (leading `+`, `.5`, `1.`, `inf`) and relying on it
        // would accept documents real JSON parsers reject.
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after the decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII span");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("invalid number `{text}`")))?;
        if !n.is_finite() {
            return Err(self.err(format!("number `{text}` overflows f64")));
        }
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        assert_eq!(&Value::parse(&v.to_string()).unwrap(), v);
        assert_eq!(&Value::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Number(0.0),
            Value::Number(-12.625),
            Value::Number(1e15),
            Value::String("he said \"hi\"\n\tπ → ∞".into()),
            Value::String(String::new()),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn float_display_roundtrips_exactly() {
        for n in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0] {
            roundtrip(&Value::Number(n));
        }
    }

    #[test]
    fn containers_roundtrip_preserving_order() {
        let v = Value::object()
            .set("zebra", 1.0)
            .set("alpha", Value::Array(vec![Value::Null, Value::Bool(true)]))
            .set("nested", Value::object().set("k", "v"));
        roundtrip(&v);
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["zebra", "alpha", "nested"], "insertion order kept");
    }

    #[test]
    fn set_replaces_existing_keys() {
        let v = Value::object().set("k", 1.0).set("k", 2.0);
        assert_eq!(v.get("k").and_then(Value::as_f64), Some(2.0));
        assert_eq!(v.as_object().unwrap().len(), 1);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Value::Number(f64::NAN).to_string(), "null");
        assert_eq!(Value::Number(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn accessors() {
        let v = Value::object().set("n", 3.0).set("s", "x").set("b", true);
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Number(1.5).as_u64(), None);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "nul",
            "\"unterminated",
            "01a",
            "01",
            "1.",
            ".5",
            "+1",
            "-",
            "1e",
            "1e+",
            "[1] trailing",
            "{\"a\":1,\"a\":2}",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = Value::parse("\"a\\u0041\\n\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("aA\n😀"));
    }

    #[test]
    fn parser_depth_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Value::parse(" {\n \"a\" : [ 1 , 2 ] \r\n} ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }
}
