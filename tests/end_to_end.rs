//! Cross-crate integration: the full pipeline the paper proposes —
//! define (packets + behaviour), verify, generate tests, execute over a
//! network — exercised end to end through the public facade.

use netdsl::core::fsm::{paper_receiver_spec, paper_sender_spec};
use netdsl::core::packet::{Coverage, Len, PacketSpec, Value};
use netdsl::netsim::LinkConfig;
use netdsl::protocols::handshake::{handshake_spec, HandshakePeer};
use netdsl::protocols::{arq, baseline, driver::Duplex, gbn, sr, tftp};
use netdsl::verify::props::check_spec;
use netdsl::verify::testgen::{coverage_of, transition_cover};
use netdsl::verify::Limits;
use netdsl::wire::checksum::ChecksumKind;

fn msgs(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("e2e-{i}").into_bytes()).collect()
}

#[test]
fn define_verify_generate_execute_pipeline() {
    // 1. Define: the paper's sender machine.
    let spec = paper_sender_spec(7);

    // 2. Verify: exhaustive check of the executable definition.
    let report = check_spec(&spec, Limits::default());
    assert!(report.all_hold(), "{report:?}");

    // 3. Generate: behavioural tests with full transition coverage…
    let suite = transition_cover(&spec);
    assert!((coverage_of(&spec, &suite) - 1.0).abs() < 1e-12);
    for case in &suite {
        assert_eq!(case.run(&spec), Ok(()));
    }

    // 4. Execute: the same protocol over a lossy simulated network.
    let out =
        arq::session::run_transfer(msgs(25), LinkConfig::lossy(5, 0.25), 9, 80, 30, 10_000_000);
    assert!(out.success);
    assert_eq!(out.delivered, msgs(25));
}

#[test]
fn every_transport_delivers_the_same_workload() {
    let cfg = LinkConfig::reliable(4)
        .with_corrupt(0.1)
        .with_duplicate(0.05);
    let sw = arq::session::run_transfer(msgs(30), cfg.clone(), 5, 80, 40, 50_000_000);
    let gb = gbn::run_transfer(msgs(30), 8, cfg.clone(), 5, 120, 60, 50_000_000);
    let s = sr::run_transfer(msgs(30), 8, cfg.clone(), 5, 120, 60, 50_000_000);
    let (bl_ok, _, bl) = baseline::run_transfer(msgs(30), cfg, 5, 80, 40, 50_000_000);
    assert!(sw.success && gb.success && s.success && bl_ok);
    assert_eq!(sw.delivered, msgs(30));
    assert_eq!(gb.delivered, msgs(30));
    assert_eq!(s.delivered, msgs(30));
    assert_eq!(bl, msgs(30));
}

#[test]
fn tftp_file_over_harsh_channel() {
    let file: Vec<u8> = (0..4000).map(|i| (i % 250) as u8).collect();
    let out = tftp::send_file(&file, LinkConfig::harsh(5), 13, 150, 80, 100_000_000);
    assert!(out.success);
    assert_eq!(out.received, file);
}

#[test]
fn handshake_then_data_transfer() {
    // Connection establishment, then a transfer, as one session story.
    let mut hs = Duplex::new(
        2,
        LinkConfig::reliable(3),
        HandshakePeer::client(100),
        HandshakePeer::server(200),
    );
    hs.run(10_000);
    assert!(hs.a().established() && hs.b().established());

    let out = arq::session::run_transfer(msgs(5), LinkConfig::reliable(3), 2, 50, 5, 100_000);
    assert!(out.success);
}

#[test]
fn handshake_spec_and_runtime_agree() {
    // Every event path the runtime peers took is replayable on the spec —
    // the "model is the implementation" claim made concrete.
    let spec = handshake_spec();
    let mut d = Duplex::new(
        4,
        LinkConfig::reliable(2),
        HandshakePeer::client(1),
        HandshakePeer::server(2),
    );
    d.run(10_000);
    for history in [&d.a().history, &d.b().history] {
        let mut m = netdsl::core::fsm::Machine::new(&spec);
        for ev in history {
            m.apply_named(ev)
                .expect("runtime history must be spec-legal");
        }
    }
}

#[test]
fn abnf_grammar_validates_generated_control_messages() {
    // A text control protocol whose syntax is ABNF and whose generated
    // messages round-trip through the matcher (grammar ↔ generator
    // agreement across crates).
    use netdsl::abnf::generate::{generate, GenConfig};
    use netdsl::abnf::Grammar;
    use rand::SeedableRng;

    let g = Grammar::parse(
        "command = verb SP target CRLF\n\
         verb = \"FETCH\" / \"STORE\" / \"DROP\"\n\
         target = 1*16(ALPHA / DIGIT)\n",
    )
    .unwrap();
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(8);
    for _ in 0..100 {
        let m = generate(&g, "command", &mut rng, GenConfig::default()).unwrap();
        assert!(g.matches("command", &m).unwrap());
    }
}

#[test]
fn custom_packet_spec_over_the_network() {
    // A user-defined spec (not one of the shipped protocols) surviving a
    // corrupting link: only checksum-valid frames come through decode.
    let spec = PacketSpec::builder("sensor")
        .constant("magic", 16, 0xBEEF)
        .uint("sensor_id", 16)
        .uint("reading", 32)
        .checksum("crc", ChecksumKind::Crc32Ieee, Coverage::Whole)
        .bytes("trail", Len::Rest)
        .build()
        .unwrap();

    let mut sim = netdsl::netsim::Simulator::new(3);
    let a = sim.add_node();
    let b = sim.add_node();
    let ab = sim.add_link(a, b, LinkConfig::reliable(1).with_corrupt(0.5));

    let mut sent = 0u32;
    for i in 0..200u32 {
        let mut v = spec.value();
        v.set("sensor_id", Value::Uint(7));
        v.set("reading", Value::Uint(u64::from(i)));
        v.set("trail", Value::Bytes(vec![0xAA; 4]));
        sim.send(ab, spec.encode(&v).unwrap());
        sent += 1;
    }
    let mut valid = 0u32;
    let mut rejected = 0u32;
    while let Some(ev) = sim.step() {
        if let netdsl::netsim::Event::Frame { payload, .. } = ev {
            match spec.decode(&payload) {
                Ok(p) => {
                    assert_eq!(p.uint("magic").unwrap(), 0xBEEF);
                    assert_eq!(p.uint("sensor_id").unwrap(), 7);
                    valid += 1;
                }
                Err(_) => rejected += 1,
            }
        }
    }
    assert_eq!(valid + rejected, sent);
    assert!(valid > 50, "some frames survive");
    assert!(
        rejected > 50,
        "corruption is detected, never delivered as data"
    );
}

#[test]
fn receiver_spec_matches_session_receiver_behaviour() {
    // The reified receiver spec advances only on RECV; the session
    // receiver advances only on valid in-order data — align the two by
    // replaying a session's delivery count through the spec.
    let spec = paper_receiver_spec(255);
    let out =
        arq::session::run_transfer(msgs(12), LinkConfig::lossy(3, 0.2), 21, 60, 30, 10_000_000);
    assert!(out.success);
    let mut m = netdsl::core::fsm::Machine::new(&spec);
    for _ in 0..out.delivered.len() {
        m.apply_named("RECV").unwrap();
    }
    assert_eq!(m.var("seq").unwrap(), 12);
}
