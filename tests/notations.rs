//! The paper's §2 argument, as executable tests: the same ARQ message
//! described in all three notations the workspace implements — ABNF
//! (syntax of a text rendering), ASN.1 (abstract data types + DER), and
//! the netdsl `PacketSpec`. Only the last can state *and enforce* the
//! semantic constraint (the checksum); the baselines accept forgeries.

use netdsl::abnf::Grammar;
use netdsl::asn1::{der, AsnType, AsnValue};
use netdsl::core::fsm::{paper_sender_spec, Config, Machine};
use netdsl::core::packet::{Coverage, Len, PacketSpec, Value};
use netdsl::wire::checksum::{arq_check, ChecksumKind};
use proptest::prelude::*;

/// The DSL definition: checksum declared, therefore enforced.
fn dsl_spec() -> PacketSpec {
    PacketSpec::builder("arq")
        .uint("seq", 8)
        .checksum(
            "chk",
            ChecksumKind::Arq,
            Coverage::Fields(vec!["seq".into(), "data".into()]),
        )
        .bytes("data", Len::Rest)
        .build()
        .unwrap()
}

#[test]
fn abnf_accepts_syntactically_valid_but_semantically_wrong_messages() {
    // A textual rendering: "MSG <seq> <chk> <hex-payload>\r\n".
    let g = Grammar::parse(
        "msg = %s\"MSG\" SP num SP num SP *hexpair CRLF\n\
         num = 1*3DIGIT\n\
         hexpair = HEXDIG HEXDIG\n",
    )
    .unwrap();

    // Correct message: seq 7, payload "hi" (0x68 0x69), true checksum.
    let chk = arq_check(7, b"hi");
    let good = format!("MSG 7 {chk} 6869\r\n");
    assert!(g.matches("msg", good.as_bytes()).unwrap());

    // Forged checksum: still *syntactically* perfect, so ABNF accepts —
    // exactly the §2.2 gap ("they are syntactic descriptions only").
    let forged = "MSG 7 0 6869\r\n";
    assert!(
        g.matches("msg", forged.as_bytes()).unwrap(),
        "ABNF cannot reject the forged checksum"
    );
}

#[test]
fn asn1_accepts_forged_checksums_too() {
    let ty = AsnType::Sequence {
        fields: vec![
            ("seq".into(), AsnType::integer_in(0, 255)),
            ("data".into(), AsnType::octets()),
            ("chk".into(), AsnType::integer_in(0, 255)),
        ],
    };
    let forged = AsnValue::Sequence(vec![
        AsnValue::Integer(7),
        AsnValue::OctetString(b"hi".to_vec()),
        AsnValue::Integer(0), // wrong
    ]);
    let bytes = der::encode(&forged);
    // Round-trips and type-checks: ASN.1's "semantic information" stops
    // at data types (§2.2).
    assert_eq!(ty.decode_checked(&bytes).unwrap(), forged);
}

#[test]
fn the_dsl_rejects_what_the_baselines_accept() {
    let spec = dsl_spec();
    // Build the forged frame at the byte level: seq 7, chk 0, "hi".
    let forged = vec![7u8, 0, b'h', b'i'];
    assert!(
        spec.decode(&forged).is_err(),
        "checksum constraint enforced"
    );

    // And the honest frame decodes.
    let mut v = spec.value();
    v.set("seq", Value::Uint(7));
    v.set("data", Value::Bytes(b"hi".to_vec()));
    let honest = spec.encode(&v).unwrap();
    assert!(spec.decode(&honest).is_ok());
    assert_eq!(honest[1], arq_check(7, b"hi"));
}

#[test]
fn asn1_der_and_packet_spec_agree_on_content() {
    // Same abstract content through both encoders: different wire
    // formats (§2.1: "different encoding rules can give different
    // on-the-wire packets for the same ASN.1"), same recovered values.
    let seq = 42u8;
    let data = b"payload".to_vec();

    let asn = AsnValue::Sequence(vec![
        AsnValue::Integer(i64::from(seq)),
        AsnValue::OctetString(data.clone()),
    ]);
    let der_bytes = der::encode(&asn);

    let spec = dsl_spec();
    let mut v = spec.value();
    v.set("seq", Value::Uint(u64::from(seq)));
    v.set("data", Value::Bytes(data.clone()));
    let dsl_bytes = spec.encode(&v).unwrap();

    assert_ne!(der_bytes, dsl_bytes, "distinct encoding rules");

    let back_asn = der::decode(&der_bytes).unwrap();
    let back_dsl = spec.decode(&dsl_bytes).unwrap();
    match back_asn {
        AsnValue::Sequence(items) => {
            assert_eq!(items[0], AsnValue::Integer(i64::from(seq)));
            assert_eq!(items[1], AsnValue::OctetString(data.clone()));
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(back_dsl.uint("seq").unwrap(), u64::from(seq));
    assert_eq!(back_dsl.bytes("data").unwrap(), &data[..]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interpreter soundness as a random-walk property: applying random
    /// event sequences to the paper's sender never drives a variable out
    /// of its domain, and every rejected event leaves the configuration
    /// bit-for-bit unchanged.
    #[test]
    fn fsm_random_walks_stay_sound(events in proptest::collection::vec(0usize..6, 0..64)) {
        let spec = paper_sender_spec(7);
        let mut m = Machine::new(&spec);
        for e in events {
            let before: Config = m.config().clone();
            let name = spec.events()[e].name.clone();
            match m.apply_named(&name) {
                Ok(_) => {
                    prop_assert!(m.config().vars[0] <= 7, "domain respected");
                }
                Err(_) => {
                    prop_assert_eq!(m.config(), &before, "refusal is side-effect-free");
                }
            }
        }
    }

    /// DER canonical form: any value that decodes re-encodes to the
    /// identical bytes (tested here over PacketSpec-shaped content).
    #[test]
    fn der_recanonicalises(seq in 0i64..256, data in proptest::collection::vec(any::<u8>(), 0..32)) {
        let v = AsnValue::Sequence(vec![
            AsnValue::Integer(seq),
            AsnValue::OctetString(data),
        ]);
        let bytes = der::encode(&v);
        let back = der::decode(&bytes).unwrap();
        prop_assert_eq!(der::encode(&back), bytes);
    }
}
