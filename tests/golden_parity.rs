//! Golden-trace parity suite: the committed corpus under
//! `tests/golden/` is the behavioural contract of the whole engine.
//!
//! Every fixture is replayed under the **full engine-axis product** —
//! `SimCore` (pooled / legacy) × `FramePath` (interpreted / compiled) ×
//! `FsmPath` (typestate / compiled), 8 combinations — and each
//! supported combination must reproduce the committed transcript
//! **byte-for-byte**: same events at the same ticks, same wire bytes,
//! same verdicts, same endpoint-state digests, same serialized JSON.
//! Combinations a protocol refuses (a compiled control FSM exists only
//! for stop-and-wait) must refuse loudly, not fall back silently.
//!
//! A property test widens the net beyond the committed corpus: random
//! small scenarios across all four protocols and random impairments
//! must also transcribe identically across every supported combo. And
//! because campaign workers record from worker threads, recording must
//! be thread-independent too.
//!
//! Regenerating after an intentional behaviour change:
//! `cargo run -p netdsl-tools --bin golden` (CI runs `--check`).

use std::path::PathBuf;

use proptest::prelude::*;

use netdsl::netsim::{GoldenTrace, LinkConfig, SimCore};
use netdsl::protocols::golden::{corpus, engine_combos, record, with_combo};
use netdsl::protocols::scenario::{BASELINE, GO_BACK_N, SELECTIVE_REPEAT, STOP_AND_WAIT};
use netdsl::scenario::{FramePath, FsmPath, ProtocolSpec, Scenario, TrafficPattern};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Only stop-and-wait has a compiled control FSM; everything else must
/// refuse `FsmPath::Compiled`.
fn supported(scenario: &Scenario, fsm: FsmPath) -> bool {
    fsm == FsmPath::Typestate || scenario.protocol.name == STOP_AND_WAIT
}

#[test]
fn corpus_spans_every_protocol_and_impairment() {
    let fixtures = corpus();
    assert!(
        fixtures.len() >= 12,
        "corpus must stay ≥ 12 fixtures, has {}",
        fixtures.len()
    );
    for protocol in ["sw", "gbn", "sr", "baseline"] {
        for impairment in ["loss", "corrupt", "dup", "reorder"] {
            assert!(
                fixtures
                    .iter()
                    .any(|s| s.name == format!("{protocol}-{impairment}")),
                "corpus lost {protocol}-{impairment}"
            );
        }
    }
}

#[test]
fn committed_corpus_replays_byte_identically_under_every_engine_combo() {
    let fixtures = corpus();
    let combos = engine_combos();
    assert_eq!(combos.len(), 8, "2 cores × 2 frame paths × 2 FSM paths");
    for scenario in &fixtures {
        let path = fixture_path(&scenario.name);
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: committed fixture unreadable ({e}); \
                 run `cargo run -p netdsl-tools --bin golden`",
                path.display()
            )
        });
        let parsed = GoldenTrace::from_json_str(&committed)
            .unwrap_or_else(|e| panic!("{}: fixture does not parse: {e}", scenario.name));
        assert_eq!(parsed.name, scenario.name, "fixture name matches its file");
        assert_eq!(
            parsed.to_json_string(),
            committed,
            "{}: committed fixture is not in canonical serialization",
            scenario.name
        );

        for &combo in &combos {
            let variant = with_combo(scenario, combo);
            if supported(scenario, combo.2) {
                let replay = record(&variant).unwrap_or_else(|e| {
                    panic!("{} under {combo:?}: recording failed: {e}", scenario.name)
                });
                assert_eq!(
                    replay.to_json_string(),
                    committed,
                    "{} under {combo:?}: transcript drifted from the committed fixture",
                    scenario.name
                );
            } else {
                assert!(
                    record(&variant).is_err(),
                    "{} under {combo:?}: must refuse loudly, not fall back",
                    scenario.name
                );
            }
        }
    }
}

#[test]
fn recording_is_identical_across_threads() {
    // Campaign workers record from worker threads; the transcript must
    // not depend on which thread does the recording.
    let scenario = corpus()
        .into_iter()
        .find(|s| s.name == "gbn-reorder")
        .expect("corpus names are stable");
    let here = record(&scenario).unwrap().to_json_string();
    let moved = scenario.clone();
    let there = std::thread::spawn(move || record(&moved).unwrap().to_json_string())
        .join()
        .expect("recording thread completes");
    assert_eq!(here, there, "recording depends on the recording thread");
    // And the default-axes recording is the committed fixture.
    assert_eq!(
        here,
        std::fs::read_to_string(fixture_path("gbn-reorder")).unwrap()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The parity property behind the corpus, over scenarios nobody
    /// hand-picked: any small scenario, any seed, any mix of loss and
    /// corruption — every supported engine combo produces the same
    /// serialized transcript, and unsupported combos refuse.
    #[test]
    fn engine_axes_never_change_the_transcript(
        protocol_idx in 0usize..4,
        loss_pct in 0u32..30,
        corrupt_pct in 0u32..15,
        messages in 2usize..6,
        seed in 0u64..10_000,
    ) {
        let (protocol, window, timeout) = [
            (STOP_AND_WAIT, 1u32, 60u64),
            (GO_BACK_N, 4, 100),
            (SELECTIVE_REPEAT, 4, 100),
            (BASELINE, 1, 60),
        ][protocol_idx];
        let link = LinkConfig::lossy(2, f64::from(loss_pct) / 100.0)
            .with_corrupt(f64::from(corrupt_pct) / 100.0);
        let scenario = Scenario::new(
            ProtocolSpec::new(protocol)
                .with_window(window)
                .with_timeout(timeout)
                .with_retries(200),
            link,
        )
        .with_name(format!("prop-{protocol_idx}-{loss_pct}-{corrupt_pct}-{seed}"))
        .with_traffic(TrafficPattern::messages(messages, 8))
        .with_seed(seed)
        .with_deadline(100_000);

        let mut reference: Option<String> = None;
        let mut replayed = 0usize;
        for combo in engine_combos() {
            let variant = with_combo(&scenario, combo);
            if supported(&scenario, combo.2) {
                let text = record(&variant).unwrap().to_json_string();
                match &reference {
                    Some(first) => prop_assert_eq!(
                        first, &text,
                        "combo {:?} diverged on {}", combo, scenario.name
                    ),
                    None => reference = Some(text),
                }
                replayed += 1;
            } else {
                prop_assert!(
                    record(&variant).is_err(),
                    "combo {:?} must refuse {}", combo, scenario.name
                );
            }
        }
        let expected = if protocol == STOP_AND_WAIT { 8 } else { 4 };
        prop_assert_eq!(replayed, expected, "supported-combo count");
    }
}

// Also used as a free sanity anchor: SimCore and FramePath appear in
// `engine_combos()`; reference them so the import list stays honest.
#[test]
fn engine_combo_axes_cover_both_values_of_every_axis() {
    let combos = engine_combos();
    for core in [SimCore::Pooled, SimCore::Legacy] {
        assert!(combos.iter().any(|c| c.0 == core));
    }
    for frame in [FramePath::Interpreted, FramePath::Compiled] {
        assert!(combos.iter().any(|c| c.1 == frame));
    }
    for fsm in [FsmPath::Typestate, FsmPath::Compiled] {
        assert!(combos.iter().any(|c| c.2 == fsm));
    }
}
