//! Golden-trace parity suite: the committed corpus under
//! `tests/golden/` is the behavioural contract of the whole engine.
//!
//! Every fixture is replayed under the **full engine-axis product** —
//! [`EngineConfig::all`]: `SimCore` (pooled / legacy) × `FramePath`
//! (interpreted / compiled) × `FsmPath` (typestate / compiled), 8
//! combinations — and each supported combination must reproduce the
//! committed transcript **byte-for-byte**: same events at the same
//! ticks, same wire bytes, same verdicts, same endpoint-state digests,
//! same serialized JSON. Combinations a protocol refuses (a compiled
//! control FSM exists only for stop-and-wait) must refuse loudly, not
//! fall back silently. The same bar applies to the **multiplexed**
//! execution path: every fixture also replays through the session-table
//! recorder (`record_multiplexed`) and the batched
//! [`MultiSessionDriver`], and a 10k-session streaming campaign must be
//! bit-identical across worker-thread counts.
//!
//! A property test widens the net beyond the committed corpus: random
//! small scenarios across all four protocols and random impairments
//! must also transcribe identically across every supported combo. And
//! because campaign workers record from worker threads, recording must
//! be thread-independent too.
//!
//! Regenerating after an intentional behaviour change:
//! `cargo run -p netdsl-tools --bin golden` (CI runs `--check`).

use std::path::PathBuf;

use proptest::prelude::*;

use netdsl::campaign::{BatchDriver, Campaign, StreamOptions, Sweep};
use netdsl::netsim::{GoldenTrace, LinkConfig, SimCore};
use netdsl::protocols::golden::{corpus, record, record_multiplexed, with_combo};
use netdsl::protocols::multiplex::MultiSessionDriver;
use netdsl::protocols::scenario::{BASELINE, GO_BACK_N, SELECTIVE_REPEAT, STOP_AND_WAIT};
use netdsl::scenario::{
    EngineConfig, FramePath, FsmPath, ProtocolSpec, Scenario, ScenarioDriver, TrafficPattern,
};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Only stop-and-wait has a compiled control FSM; everything else must
/// refuse `FsmPath::Compiled`.
fn supported(scenario: &Scenario, config: EngineConfig) -> bool {
    config.fsm_path == FsmPath::Typestate || scenario.protocol.name == STOP_AND_WAIT
}

#[test]
fn corpus_spans_every_protocol_and_impairment() {
    let fixtures = corpus();
    assert!(
        fixtures.len() >= 12,
        "corpus must stay ≥ 12 fixtures, has {}",
        fixtures.len()
    );
    for protocol in ["sw", "gbn", "sr", "baseline"] {
        for impairment in ["loss", "corrupt", "dup", "reorder"] {
            assert!(
                fixtures
                    .iter()
                    .any(|s| s.name == format!("{protocol}-{impairment}")),
                "corpus lost {protocol}-{impairment}"
            );
        }
    }
}

#[test]
fn committed_corpus_replays_byte_identically_under_every_engine_combo() {
    let fixtures = corpus();
    let combos = EngineConfig::all();
    assert_eq!(combos.len(), 8, "2 cores × 2 frame paths × 2 FSM paths");
    for scenario in &fixtures {
        let path = fixture_path(&scenario.name);
        let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: committed fixture unreadable ({e}); \
                 run `cargo run -p netdsl-tools --bin golden`",
                path.display()
            )
        });
        let parsed = GoldenTrace::from_json_str(&committed)
            .unwrap_or_else(|e| panic!("{}: fixture does not parse: {e}", scenario.name));
        assert_eq!(parsed.name, scenario.name, "fixture name matches its file");
        assert_eq!(
            parsed.to_json_string(),
            committed,
            "{}: committed fixture is not in canonical serialization",
            scenario.name
        );

        for &combo in &combos {
            let variant = with_combo(scenario, combo);
            if supported(scenario, combo) {
                let replay = record(&variant).unwrap_or_else(|e| {
                    panic!(
                        "{} under [{}]: recording failed: {e}",
                        scenario.name,
                        combo.label()
                    )
                });
                assert_eq!(
                    replay.to_json_string(),
                    committed,
                    "{} under [{}]: transcript drifted from the committed fixture",
                    scenario.name,
                    combo.label()
                );
            } else {
                assert!(
                    record(&variant).is_err(),
                    "{} under [{}]: must refuse loudly, not fall back",
                    scenario.name,
                    combo.label()
                );
            }
        }
    }
}

#[test]
fn committed_corpus_replays_byte_identically_through_the_multiplexed_path() {
    // The session-table world (Simulator sessions, session-owned nodes
    // and links) must transcribe every fixture exactly as the committed
    // Duplex recording did, under every supported engine combo — the
    // N=1 anchor that pins the multiplexed driver to standalone
    // semantics.
    for scenario in &corpus() {
        let committed = std::fs::read_to_string(fixture_path(&scenario.name)).unwrap();
        for combo in EngineConfig::all() {
            let variant = with_combo(scenario, combo);
            if supported(scenario, combo) {
                let replay = record_multiplexed(&variant).unwrap_or_else(|e| {
                    panic!(
                        "{} under [{}]: multiplexed recording failed: {e}",
                        scenario.name,
                        combo.label()
                    )
                });
                assert_eq!(
                    replay.to_json_string(),
                    committed,
                    "{} under [{}]: multiplexed transcript drifted",
                    scenario.name,
                    combo.label()
                );
            } else {
                assert!(
                    record_multiplexed(&variant).is_err(),
                    "{} under [{}]: multiplexed recorder must refuse too",
                    scenario.name,
                    combo.label()
                );
            }
        }
    }
}

#[test]
fn batched_fixture_corpus_matches_solo_results() {
    // The whole corpus as ONE batch of sessions sharing a simulator:
    // every per-scenario result must equal the standalone driver's.
    let fixtures = corpus();
    let solo = netdsl::protocols::scenario::SuiteDriver::new();
    let batched = MultiSessionDriver::new().run_batch(&fixtures);
    for (scenario, got) in fixtures.iter().zip(batched) {
        let want = solo.run(scenario).unwrap();
        assert_eq!(
            got.unwrap(),
            want,
            "{}: batched session diverges from the solo run",
            scenario.name
        );
    }
}

#[test]
fn recording_is_identical_across_threads() {
    // Campaign workers record from worker threads; the transcript must
    // not depend on which thread does the recording.
    let scenario = corpus()
        .into_iter()
        .find(|s| s.name == "gbn-reorder")
        .expect("corpus names are stable");
    let here = record(&scenario).unwrap().to_json_string();
    let moved = scenario.clone();
    let there = std::thread::spawn(move || record(&moved).unwrap().to_json_string())
        .join()
        .expect("recording thread completes");
    assert_eq!(here, there, "recording depends on the recording thread");
    // And the default-axes recording is the committed fixture.
    assert_eq!(
        here,
        std::fs::read_to_string(fixture_path("gbn-reorder")).unwrap()
    );
}

#[test]
fn streaming_ten_thousand_sessions_is_bit_identical_across_worker_counts() {
    // A 10_000-scenario campaign (4 protocols × 2 links × 1250 seeds)
    // streamed through the multiplexed driver must produce the same
    // report — every moment, every extremum, every raw sample, every
    // error string — no matter how many worker threads ran it or how
    // the chunks interleaved.
    let campaign = Campaign::new("mux-determinism", 41)
        .protocols(Sweep::grid([
            (
                "sw",
                ProtocolSpec::new(STOP_AND_WAIT)
                    .with_timeout(40)
                    .with_retries(50),
            ),
            (
                "gbn",
                ProtocolSpec::new(GO_BACK_N)
                    .with_window(4)
                    .with_timeout(60)
                    .with_retries(50),
            ),
            (
                "sr",
                ProtocolSpec::new(SELECTIVE_REPEAT)
                    .with_window(4)
                    .with_timeout(60)
                    .with_retries(50),
            ),
            (
                "base",
                ProtocolSpec::new(BASELINE)
                    .with_timeout(40)
                    .with_retries(50),
            ),
        ]))
        .links(Sweep::grid([
            ("clean", LinkConfig::reliable(2)),
            ("lossy", LinkConfig::lossy(2, 0.15)),
        ]))
        .traffic(Sweep::grid([("tiny", TrafficPattern::messages(2, 8))]))
        .seeds(Sweep::seeds(1250));
    assert_eq!(campaign.scenario_count(), 10_000);

    let driver = MultiSessionDriver::new();
    let opts = StreamOptions {
        chunk: 512,
        raw_cap: 2048,
    };
    let reference = campaign.run_streaming(&driver, 1, opts);
    assert_eq!(reference.executed, 10_000);
    assert!(
        reference.succeeded > 9_000,
        "tiny transfers overwhelmingly succeed, got {}",
        reference.succeeded
    );
    for threads in [2, 8] {
        let report = campaign.run_streaming(&driver, threads, opts);
        assert_eq!(
            report, reference,
            "streaming report differs at {threads} worker threads"
        );
    }
    // Chunk geometry changes which sessions share a simulator and the
    // floating-point summation order, but never any per-scenario result:
    // counts and extrema must match exactly, moments to rounding.
    let rechunked = campaign.run_streaming(
        &driver,
        4,
        StreamOptions {
            chunk: 640,
            raw_cap: 2048,
        },
    );
    assert_eq!(rechunked.executed, reference.executed);
    assert_eq!(rechunked.succeeded, reference.succeeded);
    assert_eq!(rechunked.failed, reference.failed);
    assert_eq!(rechunked.goodput.min(), reference.goodput.min());
    assert_eq!(rechunked.goodput.max(), reference.goodput.max());
    let (a, b) = (rechunked.goodput.mean(), reference.goodput.mean());
    assert!(
        ((a - b) / b).abs() < 1e-12,
        "chunk geometry changed results beyond summation rounding: {a} vs {b}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The parity property behind the corpus, over scenarios nobody
    /// hand-picked: any small scenario, any seed, any mix of loss and
    /// corruption — every supported engine combo produces the same
    /// serialized transcript (through the Duplex *and* the multiplexed
    /// recorder), and unsupported combos refuse.
    #[test]
    fn engine_axes_never_change_the_transcript(
        protocol_idx in 0usize..4,
        loss_pct in 0u32..30,
        corrupt_pct in 0u32..15,
        messages in 2usize..6,
        seed in 0u64..10_000,
    ) {
        let (protocol, window, timeout) = [
            (STOP_AND_WAIT, 1u32, 60u64),
            (GO_BACK_N, 4, 100),
            (SELECTIVE_REPEAT, 4, 100),
            (BASELINE, 1, 60),
        ][protocol_idx];
        let link = LinkConfig::lossy(2, f64::from(loss_pct) / 100.0)
            .with_corrupt(f64::from(corrupt_pct) / 100.0);
        let scenario = Scenario::new(
            ProtocolSpec::new(protocol)
                .with_window(window)
                .with_timeout(timeout)
                .with_retries(200),
            link,
        )
        .with_name(format!("prop-{protocol_idx}-{loss_pct}-{corrupt_pct}-{seed}"))
        .with_traffic(TrafficPattern::messages(messages, 8))
        .with_seed(seed)
        .with_deadline(100_000);

        let mut reference: Option<String> = None;
        let mut replayed = 0usize;
        for combo in EngineConfig::all() {
            let variant = with_combo(&scenario, combo);
            if supported(&scenario, combo) {
                let text = record(&variant).unwrap().to_json_string();
                let multiplexed = record_multiplexed(&variant).unwrap().to_json_string();
                prop_assert_eq!(
                    &text, &multiplexed,
                    "combo [{}] multiplexed recorder diverged on {}",
                    combo.label(), scenario.name
                );
                match &reference {
                    Some(first) => prop_assert_eq!(
                        first, &text,
                        "combo [{}] diverged on {}", combo.label(), scenario.name
                    ),
                    None => reference = Some(text),
                }
                replayed += 1;
            } else {
                prop_assert!(
                    record(&variant).is_err(),
                    "combo [{}] must refuse {}", combo.label(), scenario.name
                );
            }
        }
        let expected = if protocol == STOP_AND_WAIT { 8 } else { 4 };
        prop_assert_eq!(replayed, expected, "supported-combo count");
    }
}

// Also used as a free sanity anchor: SimCore and FramePath appear in
// `EngineConfig::all()`; reference them so the import list stays honest.
#[test]
fn engine_combo_axes_cover_both_values_of_every_axis() {
    let combos = EngineConfig::all();
    for core in [SimCore::Pooled, SimCore::Legacy] {
        assert!(combos.iter().any(|c| c.sim_core == core));
    }
    for frame in [FramePath::Interpreted, FramePath::Compiled] {
        assert!(combos.iter().any(|c| c.frame_path == frame));
    }
    for fsm in [FsmPath::Typestate, FsmPath::Compiled] {
        assert!(combos.iter().any(|c| c.fsm_path == fsm));
    }
}
