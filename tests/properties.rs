//! Property-based integration tests: the invariants the paper's type
//! system is meant to guarantee, checked across random workloads,
//! impairments and seeds.

use proptest::prelude::*;

use netdsl::core::packet::{Coverage, Len, PacketSpec, Value};
use netdsl::netsim::LinkConfig;
use netdsl::protocols::{arq, gbn, sr};
use netdsl::wire::checksum::ChecksumKind;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly-once, in-order delivery for stop-and-wait under arbitrary
    /// loss/corruption/duplication — the paper's §3.4 guarantees as a
    /// universally-quantified property.
    #[test]
    fn arq_delivers_exactly_once_in_order(
        seed in 0u64..1000,
        loss in 0.0f64..0.35,
        corrupt in 0.0f64..0.2,
        duplicate in 0.0f64..0.2,
        n in 1usize..15,
    ) {
        let messages: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 8]).collect();
        let cfg = LinkConfig::reliable(3)
            .with_loss(loss)
            .with_corrupt(corrupt)
            .with_duplicate(duplicate);
        let out = arq::session::run_transfer(messages.clone(), cfg, seed, 60, 300, 500_000_000);
        prop_assert!(out.success, "stats {:?}", out.sender);
        prop_assert_eq!(out.delivered, messages);
    }

    /// The same property for both windowed protocols, adding jitter
    /// (reordering).
    #[test]
    fn window_protocols_deliver_exactly_once_in_order(
        seed in 0u64..1000,
        loss in 0.0f64..0.25,
        jitter in 0u64..15,
        window in 2u32..10,
        n in 1usize..15,
    ) {
        let messages: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 8]).collect();
        let cfg = LinkConfig::reliable(3).with_loss(loss).with_jitter(jitter);
        let g = gbn::run_transfer(messages.clone(), window, cfg.clone(), seed, 120, 500, 500_000_000);
        prop_assert!(g.success);
        prop_assert_eq!(&g.delivered, &messages);
        let s = sr::run_transfer(messages.clone(), window, cfg, seed, 120, 500, 500_000_000);
        prop_assert!(s.success);
        prop_assert_eq!(&s.delivered, &messages);
    }

    /// Declarative codec round-trip for a spec exercising every field
    /// kind, over arbitrary field values.
    #[test]
    fn packet_spec_roundtrip(
        sensor in 0u64..0xFFFF,
        reading in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let spec = PacketSpec::builder("prop")
            .constant("magic", 8, 0x7E)
            .uint("sensor", 16)
            .length("len", 16, Coverage::Whole)
            .uint("reading", 32)
            .checksum("crc", ChecksumKind::Crc16Ccitt, Coverage::Whole)
            .bytes("payload", Len::Rest)
            .build()
            .unwrap();
        let mut v = spec.value();
        v.set("sensor", Value::Uint(sensor));
        v.set("reading", Value::Uint(u64::from(reading)));
        v.set("payload", Value::Bytes(payload.clone()));
        let wire = spec.encode(&v).unwrap();
        let back = spec.decode(&wire).unwrap();
        prop_assert_eq!(back.uint("sensor").unwrap(), sensor);
        prop_assert_eq!(back.uint("reading").unwrap(), u64::from(reading));
        prop_assert_eq!(back.bytes("payload").unwrap(), &payload[..]);
        prop_assert_eq!(back.uint("len").unwrap(), wire.len() as u64);
    }

    /// Single-bit corruption of any position is always rejected by the
    /// CRC-protected spec — no corrupted frame ever decodes.
    #[test]
    fn packet_spec_rejects_any_single_bit_flip(
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        flip_byte in 0usize..64,
        flip_bit in 0u8..8,
    ) {
        let spec = PacketSpec::builder("flip")
            .uint("id", 16)
            .checksum("crc", ChecksumKind::Crc32Ieee, Coverage::Whole)
            .bytes("payload", Len::Rest)
            .build()
            .unwrap();
        let mut v = spec.value();
        v.set("id", Value::Uint(42));
        v.set("payload", Value::Bytes(payload));
        let mut wire = spec.encode(&v).unwrap();
        let idx = flip_byte % wire.len();
        wire[idx] ^= 1 << flip_bit;
        prop_assert!(spec.decode(&wire).is_err());
    }

    /// ARQ frames survive encode→decode for every seq/payload, and the
    /// typed decode refuses every truncation.
    #[test]
    fn arq_frame_total_roundtrip(seq in any::<u8>(), payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let f = arq::ArqFrame::Data { seq, payload };
        let wire = f.encode();
        prop_assert_eq!(arq::ArqFrame::decode(&wire).unwrap(), f);
        for cut in 0..wire.len().min(3) {
            prop_assert!(arq::ArqFrame::decode(&wire[..cut]).is_err());
        }
    }

    /// TFTP transfers arbitrary file contents byte-exactly across block
    /// boundaries (including the empty-terminator edge cases).
    #[test]
    fn tftp_transfers_arbitrary_files(
        len in 0usize..2048,
        seed in 0u64..100,
        loss in 0.0f64..0.2,
    ) {
        let file: Vec<u8> = (0..len).map(|i| (i * 37 + seed as usize) as u8).collect();
        let out = netdsl::protocols::tftp::send_file(
            &file,
            LinkConfig::lossy(2, loss),
            seed,
            80,
            200,
            500_000_000,
        );
        prop_assert!(out.success);
        prop_assert_eq!(out.received, file);
    }

    /// Distance-vector advertisements round-trip for arbitrary entry
    /// sets, and corruption is always caught.
    #[test]
    fn dv_advert_total_roundtrip(
        origin in any::<u16>(),
        entries in proptest::collection::vec((any::<u16>(), 0u8..16), 0..20),
        flip in 0usize..128,
    ) {
        use netdsl::protocols::dv::{Advert, AdvertEntry};
        let advert = Advert {
            origin,
            entries: entries
                .iter()
                .map(|&(dest, metric)| AdvertEntry { dest, metric })
                .collect(),
        };
        let wire = advert.encode();
        prop_assert_eq!(Advert::decode(&wire).unwrap(), advert);
        let mut bad = wire.clone();
        let idx = flip % bad.len();
        bad[idx] ^= 0x04;
        prop_assert!(Advert::decode(&bad).is_err(), "bit flip at {} undetected", idx);
    }

    /// DER ↔ PacketSpec independence: any content survives both notations
    /// (they are different encodings of the same abstract message).
    #[test]
    fn asn1_and_dsl_preserve_the_same_content(
        seq in 0u64..256,
        data in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        use netdsl::asn1::{der, AsnValue};
        let asn = AsnValue::Sequence(vec![
            AsnValue::Integer(seq as i64),
            AsnValue::OctetString(data.clone()),
        ]);
        let via_der = der::decode(&der::encode(&asn)).unwrap();
        prop_assert_eq!(&via_der, &asn);

        let spec = netdsl::protocols::arq::arq_spec();
        let frame = netdsl::protocols::arq::ArqFrame::Data {
            seq: seq as u8,
            payload: data.clone(),
        };
        let via_dsl = spec.decode(&frame.encode()).unwrap();
        prop_assert_eq!(via_dsl.uint("seq").unwrap(), seq);
        prop_assert_eq!(via_dsl.bytes("payload").unwrap(), &data[..]);
    }

    /// The simulator conserves frames: sent = delivered + lost when
    /// duplication is off (conservation law).
    #[test]
    fn simulator_conserves_frames(seed in any::<u64>(), loss in 0.0f64..1.0, n in 1u32..200) {
        let mut sim = netdsl::netsim::Simulator::new(seed);
        let a = sim.add_node();
        let b = sim.add_node();
        let ab = sim.add_link(a, b, LinkConfig::lossy(1, loss));
        for _ in 0..n {
            sim.send(ab, vec![0; 4]);
        }
        while sim.step().is_some() {}
        let st = sim.link_stats(ab);
        prop_assert_eq!(st.sent, u64::from(n));
        prop_assert_eq!(st.delivered + st.lost, u64::from(n));
    }
}
