//! Adaptive retransmission (RFC 6298 SRTT/RTTVAR + Karn + backoff) and
//! the fault engine, end to end: the `RetransmitPolicy` axis must be
//! deterministic across every driver, the fault kinds must land
//! identically solo and multiplexed, and the invariant monitor must
//! hold over the whole grid.
//!
//! Estimator-level properties (bound clamping, Karn's discard, backoff
//! reset on a clean sample) are unit-tested in `netdsl-adapt`; this
//! suite checks the same behaviours *through the protocol stack*.

use netdsl::netsim::campaign::BatchDriver;
use netdsl::netsim::check_result;
use netdsl::netsim::LinkConfig;
use netdsl::protocols::multiplex::{run_session_stepped, suite_session, MultiSessionDriver};
use netdsl::protocols::scenario::{SuiteDriver, GO_BACK_N, SELECTIVE_REPEAT, STOP_AND_WAIT};
use netdsl::scenario::{
    Fault, FaultDirection, FaultNode, FsmPath, ProtocolSpec, RetransmitPolicy, Scenario,
    ScenarioDriver, ScenarioResult, TrafficPattern,
};

const ADAPTIVE: RetransmitPolicy = RetransmitPolicy::AdaptiveRto {
    min_rto: 4,
    max_rto: 2_000,
};

fn scenario(protocol: &str, policy: RetransmitPolicy) -> Scenario {
    Scenario::new(
        ProtocolSpec::new(protocol)
            .with_window(4)
            .with_timeout(90)
            .with_retries(200)
            .with_retransmit(policy),
        LinkConfig::lossy(3, 0.2),
    )
    .with_name(format!("adaptive-rto/{protocol}"))
    .with_traffic(TrafficPattern::messages(12, 16))
    .with_seed(0xADA)
    .with_deadline(1_000_000)
}

/// Runs one scenario through all three engines: the standalone duplex
/// pump, the batched multiplexer, and the stepped multiplexer.
fn run_everywhere(s: &Scenario) -> [ScenarioResult; 3] {
    let solo = SuiteDriver::new().run(s).expect("valid scenario");
    let mux = MultiSessionDriver::new()
        .run_batch(std::slice::from_ref(s))
        .remove(0)
        .expect("valid scenario");
    let mut pair = suite_session(s).expect("valid scenario");
    let (stepped, _) = run_session_stepped(s, pair.as_mut(), false);
    [solo, mux, stepped]
}

#[test]
fn adaptive_runs_are_bit_identical_across_drivers() {
    for protocol in [STOP_AND_WAIT, GO_BACK_N, SELECTIVE_REPEAT] {
        let s = scenario(protocol, ADAPTIVE);
        let [solo, mux, stepped] = run_everywhere(&s);
        assert_eq!(solo, mux, "{protocol}: solo vs batched");
        assert_eq!(solo, stepped, "{protocol}: solo vs stepped");
        assert!(solo.success, "{protocol}: {solo:?}");
        check_result(&s, &solo).assert_ok(&s.name);
    }
}

#[test]
fn adaptive_runs_are_reproducible() {
    let s = scenario(SELECTIVE_REPEAT, ADAPTIVE);
    let a = SuiteDriver::new().run(&s).unwrap();
    let b = SuiteDriver::new().run(&s).unwrap();
    assert_eq!(a, b, "same seed, same result — the estimator is pure");
}

#[test]
fn adaptive_beats_fixed_when_the_timeout_undershoots_the_rtt() {
    // Delay 30 each way ⇒ RTT 60, timer armed at 30: the fixed arm
    // spuriously retransmits (nearly) every frame; Karn + backoff let
    // the adaptive arm escape and the estimator then learns the RTT.
    let cell = |policy| {
        let s = Scenario::new(
            ProtocolSpec::new(STOP_AND_WAIT)
                .with_timeout(30)
                .with_retries(200)
                .with_retransmit(policy),
            LinkConfig::reliable(30),
        )
        .with_traffic(TrafficPattern::messages(24, 16))
        .with_seed(3)
        .with_deadline(1_000_000);
        SuiteDriver::new().run(&s).unwrap()
    };
    let fixed = cell(RetransmitPolicy::Fixed);
    let adaptive = cell(ADAPTIVE);
    assert!(fixed.success && adaptive.success);
    assert!(
        adaptive.retransmissions * 4 < fixed.retransmissions,
        "adaptive {} vs fixed {}",
        adaptive.retransmissions,
        fixed.retransmissions
    );
}

#[test]
fn backed_off_failure_is_bounded_by_the_rto_cap() {
    // A crashed receiver that never comes back dooms the transfer; the
    // sender must exhaust its retry budget and report a clean failure
    // within retries × max_rto — the cap is what makes doomed senders
    // terminate long before an uncapped exponential would.
    let s = Scenario::new(
        ProtocolSpec::new(STOP_AND_WAIT)
            .with_timeout(80)
            .with_retries(20)
            .with_retransmit(ADAPTIVE),
        LinkConfig::reliable(3),
    )
    .with_traffic(TrafficPattern::messages(4, 16))
    .with_seed(11)
    .with_deadline(1_000_000)
    .with_fault(Fault::crash(10, FaultNode::B));
    let r = SuiteDriver::new().run(&s).unwrap();
    assert!(!r.success, "no receiver, no success");
    assert!(
        r.elapsed <= 21 * 2_000,
        "retry budget × RTO cap bounds the failure, got {}",
        r.elapsed
    );
    check_result(&s, &r).assert_ok("bounded failure");
}

#[test]
fn every_fault_kind_lands_identically_solo_and_multiplexed() {
    let plans: Vec<(&str, Vec<Fault>)> = vec![
        (
            "crash-restart",
            vec![
                Fault::crash(20, FaultNode::B),
                Fault::restart(400, FaultNode::B),
            ],
        ),
        (
            "flap",
            vec![Fault::flap(
                30,
                FaultDirection::Forward,
                LinkConfig::lossy(1, 1.0),
                150,
                250,
                2,
            )],
        ),
        (
            "skew",
            vec![
                Fault::link(10, FaultDirection::Forward, LinkConfig::lossy(3, 0.25)),
                Fault::clock_skew(25, FaultNode::A, 5, 4),
            ],
        ),
        (
            "burst",
            vec![Fault::burst(
                30,
                FaultDirection::Both,
                LinkConfig::reliable(3).with_corrupt(0.6),
                300,
            )],
        ),
    ];
    for (label, faults) in plans {
        for protocol in [STOP_AND_WAIT, GO_BACK_N, SELECTIVE_REPEAT] {
            for policy in [RetransmitPolicy::Fixed, ADAPTIVE] {
                let mut s = Scenario::new(
                    ProtocolSpec::new(protocol)
                        .with_window(4)
                        .with_timeout(90)
                        .with_retries(200)
                        .with_retransmit(policy),
                    LinkConfig::reliable(3),
                )
                .with_name(format!("fault-parity/{label}/{protocol}"))
                .with_traffic(TrafficPattern::messages(24, 16))
                .with_seed(0xFA17)
                .with_deadline(1_000_000);
                for fault in &faults {
                    s = s.with_fault(fault.clone());
                }
                let [solo, mux, stepped] = run_everywhere(&s);
                assert_eq!(solo, mux, "{}: solo vs batched", s.name);
                assert_eq!(solo, stepped, "{}: solo vs stepped", s.name);
                check_result(&s, &solo).assert_ok(&s.name);
            }
        }
    }
}

#[test]
fn a_fault_scheduled_after_the_last_event_never_lands() {
    // The transfer finishes long before the crash boundary; with no
    // event left to cross it, the fault is discarded by every driver
    // (the multiplexer closes the slot, the solo pump stops) instead of
    // resurrecting a finished session.
    let mut base = scenario(GO_BACK_N, RetransmitPolicy::Fixed);
    base.link = LinkConfig::reliable(3);
    let quiet = SuiteDriver::new().run(&base).unwrap();
    let s = base
        .clone()
        .with_fault(Fault::crash(quiet.elapsed + 1_000, FaultNode::B))
        .with_fault(Fault::restart(quiet.elapsed + 2_000, FaultNode::B));
    let [solo, mux, stepped] = run_everywhere(&s);
    assert_eq!(solo, quiet, "late fault must not change the run");
    assert_eq!(solo, mux);
    assert_eq!(solo, stepped);
}

#[test]
fn invariant_monitor_flags_dishonest_results() {
    let s = scenario(STOP_AND_WAIT, RetransmitPolicy::Fixed);
    let mut r = SuiteDriver::new().run(&s).unwrap();
    check_result(&s, &r).assert_ok("honest result");
    r.messages_delivered -= 1;
    let report = check_result(&s, &r);
    assert!(
        !report.ok(),
        "success with missing deliveries must be flagged"
    );
}

#[test]
fn adaptive_policy_is_refused_where_it_cannot_apply() {
    use netdsl::protocols::scenario::BASELINE;
    // The hand-rolled baseline hard-codes its fixed timer.
    let s = Scenario::new(
        ProtocolSpec::new(BASELINE)
            .with_timeout(60)
            .with_retransmit(ADAPTIVE),
        LinkConfig::reliable(3),
    )
    .with_traffic(TrafficPattern::messages(4, 8));
    assert!(SuiteDriver::new().run(&s).is_err());
    // So does the compiled control-FSM engine.
    let s = Scenario::new(
        ProtocolSpec::new(STOP_AND_WAIT)
            .with_timeout(60)
            .with_fsm_path(FsmPath::Compiled)
            .with_retransmit(ADAPTIVE),
        LinkConfig::reliable(3),
    )
    .with_traffic(TrafficPattern::messages(4, 8));
    assert!(SuiteDriver::new().run(&s).is_err());
}
