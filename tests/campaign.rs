//! Integration suite for the declarative campaign layer: determinism
//! under parallelism, the acceptance sweep (3 protocols × 3 links ×
//! 4 seeds on ≥ 2 threads), failure injection expressed as data, and
//! the `BENCH_QUICK` contract (quick mode shrinks workloads, never the
//! sweep grid) plus the campaign → benchmark-report bridge.

use proptest::prelude::*;

use netdsl::bench::harnesses;
use netdsl::bench::report::BenchReport;
use netdsl::campaign::{Campaign, Sweep};
use netdsl::netsim::LinkConfig;
use netdsl::protocols::scenario::{
    SuiteDriver, BASELINE, GO_BACK_N, SELECTIVE_REPEAT, STOP_AND_WAIT,
};
use netdsl::scenario::{
    Fault, FaultDirection, ProtocolSpec, Scenario, ScenarioDriver, TrafficPattern,
};

/// The acceptance-criteria campaign: ≥ 3 protocols × ≥ 3 link
/// conditions × ≥ 4 seeds from one definition.
fn acceptance_campaign(base_seed: u64) -> Campaign {
    Campaign::new("acceptance", base_seed)
        .protocols(Sweep::grid([
            ("sw", ProtocolSpec::new(STOP_AND_WAIT)),
            (
                "gbn8",
                ProtocolSpec::new(GO_BACK_N)
                    .with_window(8)
                    .with_retries(400),
            ),
            (
                "sr8",
                ProtocolSpec::new(SELECTIVE_REPEAT)
                    .with_window(8)
                    .with_retries(400),
            ),
        ]))
        .links(Sweep::grid([
            ("clean", LinkConfig::reliable(3)),
            ("lossy", LinkConfig::lossy(3, 0.2)),
            ("harsh", LinkConfig::harsh(3)),
        ]))
        .traffic(Sweep::single("12x24", TrafficPattern::messages(12, 24)))
        .seeds(Sweep::seeds(4))
}

#[test]
fn acceptance_sweep_runs_and_parallel_matches_sequential() {
    let campaign = acceptance_campaign(99);
    assert_eq!(campaign.scenarios().len(), 36, "3 × 3 × 4");

    let driver = SuiteDriver::new();
    let parallel = campaign.run(&driver, 2);
    let sequential = campaign.run(&driver, 1);
    assert_eq!(
        parallel, sequential,
        "2-thread report bit-identical to 1-thread"
    );

    let agg = parallel.aggregate();
    assert_eq!(agg.runs, 36);
    assert_eq!(agg.errors, 0);
    assert_eq!(agg.succeeded, 36, "every cell completes its transfer");
    assert!(agg.goodput.min() > 0.0);

    // Aggregate percentile queries agree across the two reports too.
    let (p, s) = (parallel.aggregate(), sequential.aggregate());
    for q in [0.0, 25.0, 50.0, 95.0, 100.0] {
        assert_eq!(p.goodput.percentile(q), s.goodput.percentile(q));
        assert_eq!(p.latency.percentile(q), s.latency.percentile(q));
        assert_eq!(p.retransmits.percentile(q), s.retransmits.percentile(q));
    }
}

#[test]
fn campaign_reruns_are_bit_identical() {
    let campaign = acceptance_campaign(7);
    let driver = SuiteDriver::new();
    assert_eq!(campaign.run(&driver, 3), campaign.run(&driver, 3));
}

#[test]
fn arena_recycling_never_changes_campaign_reports() {
    // Campaign workers recycle one payload arena (and timer wheel) per
    // thread across scenarios; the first run starts cold, every later
    // run on the same threads starts warm. Same seeds must still give
    // byte-identical reports — slot reuse is invisible to results.
    let campaign = acceptance_campaign(41);
    let driver = SuiteDriver::new();
    let cold = campaign.run(&driver, 2);
    for rerun in 0..3 {
        assert_eq!(
            cold,
            campaign.run(&driver, 2),
            "warm-arena rerun {rerun} diverged"
        );
    }
    // And a differently-threaded warm run still matches.
    assert_eq!(cold, campaign.run(&driver, 1));
}

#[test]
fn engine_cores_produce_identical_campaign_reports() {
    // The pooled core (arena + timer wheel) and the legacy core (owned
    // buffers + binary heap) are behaviourally identical; a whole
    // campaign — faults, duplication, corruption, jitter included —
    // must come out bit-for-bit the same on both.
    use netdsl::netsim::SimCore;
    use netdsl::scenario::EngineConfig;
    let with_core = |core: SimCore| {
        let engine = EngineConfig {
            sim_core: core,
            ..EngineConfig::default()
        };
        acceptance_campaign(23)
            .protocols(Sweep::grid([
                ("sw", ProtocolSpec::new(STOP_AND_WAIT).with_engine(engine)),
                (
                    "gbn8",
                    ProtocolSpec::new(GO_BACK_N)
                        .with_window(8)
                        .with_retries(400)
                        .with_engine(engine),
                ),
                (
                    "sr8",
                    ProtocolSpec::new(SELECTIVE_REPEAT)
                        .with_window(8)
                        .with_retries(400)
                        .with_engine(engine),
                ),
            ]))
            .fault(Fault::partition(400))
            .fault(Fault::repair(2_000, 3))
    };
    let driver = SuiteDriver::new();
    let pooled = with_core(SimCore::Pooled).run(&driver, 2);
    let legacy = with_core(SimCore::Legacy).run(&driver, 2);
    // The reports differ only in the protocol specs they carry (the
    // sim_core axis value); results must be identical cell-for-cell.
    assert_eq!(pooled.runs.len(), legacy.runs.len());
    for (p, l) in pooled.runs.iter().zip(&legacy.runs) {
        assert_eq!(p.scenario.name, l.scenario.name);
        assert_eq!(
            p.outcome, l.outcome,
            "{} diverged across cores",
            p.scenario.name
        );
    }
}

#[test]
fn common_random_numbers_across_protocols() {
    // Scenarios differing only on non-seed axes share a derived seed, so
    // every protocol faces the same channel randomness per replicate.
    let scenarios = acceptance_campaign(3).scenarios();
    for a in &scenarios {
        for b in &scenarios {
            if a.labels.seed == b.labels.seed {
                assert_eq!(a.seed, b.seed, "{} vs {}", a.name, b.name);
            } else {
                assert_ne!(a.seed, b.seed, "{} vs {}", a.name, b.name);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole determinism property: for any base seed and thread
    /// count, a campaign with fixed seeds produces a bit-identical
    /// report — parallelism must never leak into results.
    #[test]
    fn campaign_determinism_under_parallelism(
        base_seed in 0u64..10_000,
        threads in 2usize..6,
    ) {
        let campaign = Campaign::new("prop", base_seed)
            .protocols(
                Sweep::single("sw", ProtocolSpec::new(STOP_AND_WAIT).with_timeout(40))
                    .and("base", ProtocolSpec::new(BASELINE).with_timeout(40)),
            )
            .links(Sweep::grid([
                ("lossy", LinkConfig::lossy(2, 0.25)),
                ("noisy", LinkConfig::reliable(2).with_corrupt(0.2).with_jitter(6)),
            ]))
            .traffic(Sweep::single("6x8", TrafficPattern::messages(6, 8)))
            .seeds(Sweep::seeds(2));
        let driver = SuiteDriver::new();
        let multi = campaign.run(&driver, threads);
        let single = campaign.run(&driver, 1);
        prop_assert_eq!(multi, single);
    }
}

#[test]
fn quick_and_full_mode_share_scenario_labels() {
    // The BENCH_QUICK contract: quick mode shrinks workloads and
    // measurement budgets, never the sweep grid — every harness
    // campaign expands to the same scenario names, axis labels and
    // derived seeds in both modes, so BENCH_*.json artifacts stay
    // comparable cell-for-cell across modes.
    for (name, builder) in [
        ("e4", harnesses::e4_campaign as fn(bool) -> Campaign),
        ("e8", harnesses::e8_campaign),
        ("e9", harnesses::e9_campaign),
        ("e11", harnesses::e11_campaign),
    ] {
        let full = builder(false).scenarios();
        let quick = builder(true).scenarios();
        assert_eq!(full.len(), quick.len(), "{name}: grid size");
        for (f, q) in full.iter().zip(&quick) {
            assert_eq!(f.name, q.name, "{name}: scenario name");
            assert_eq!(f.labels, q.labels, "{name}: axis labels");
            assert_eq!(f.seed, q.seed, "{name}: derived seed");
            assert!(
                q.traffic.count <= f.traffic.count,
                "{name}: quick workloads never grow"
            );
        }
    }
}

#[test]
fn stage_attribution_labels_are_pinned() {
    use netdsl::bench::stages::{profile, STAGES, STAGE_METRIC};
    // The stage half of the BENCH_QUICK contract: quick mode shrinks
    // iteration counts, never the label set. Every harness that calls
    // `stages::attach` carries one `stage_time` series per canonical
    // stage, in pipeline order, whatever the mode — so stage rows stay
    // diffable across modes, harnesses and commits.
    assert_eq!(
        STAGES,
        ["encode", "checksum", "schedule", "deliver", "decode", "verify"],
        "the canonical stage list is a published contract \
         (docs/BENCHMARKS.md, check_bench_json); extend it deliberately"
    );
    let metrics = profile(1, 32);
    let labels: Vec<String> = metrics
        .iter()
        .map(|m| {
            assert_eq!(m.name, STAGE_METRIC);
            assert_eq!(m.unit, "ns/op");
            assert_eq!(m.axes.len(), 1, "stage series carry only the stage axis");
            m.axes[0].1.clone()
        })
        .collect();
    assert_eq!(labels, STAGES, "labels match the canonical set in order");
}

#[test]
fn campaign_reports_roundtrip_through_the_bench_schema() {
    // A campaign run converted to the benchmark-report schema survives
    // serialize → parse unchanged — what CI's bench-smoke job gates on.
    let run = acceptance_campaign(11).run(&SuiteDriver::new(), 2);
    let report = BenchReport::from_campaign("acceptance", "acceptance sweep", &run);
    assert_eq!(
        report.metrics.len(),
        3 * 3 * 5,
        "3 protocols × 3 links × 5 metric kinds"
    );
    assert!(
        report
            .metrics
            .iter()
            .filter(|m| m.name == "goodput")
            .all(|m| m.samples.len() == 4),
        "one goodput sample per seed replicate"
    );
    let parsed = BenchReport::from_json_str(&report.to_json_string()).unwrap();
    assert_eq!(parsed, report);
}

#[test]
fn failure_injection_expressed_declaratively() {
    // The imperative partition/repair test from tests/failure_injection.rs
    // as pure data: a partition 50 ticks in, repaired at tick 5000.
    let scenario = Scenario::new(
        ProtocolSpec::new(STOP_AND_WAIT)
            .with_timeout(60)
            .with_retries(1000),
        LinkConfig::reliable(3),
    )
    .with_traffic(TrafficPattern::messages(10, 16))
    .with_seed(5)
    .with_fault(Fault::partition(50))
    .with_fault(Fault::repair(5_000, 3));

    let result = SuiteDriver::new().run(&scenario).unwrap();
    assert!(
        result.success,
        "repair lets the session complete: {result:?}"
    );
    assert!(result.elapsed > 5_000, "completion only after the repair");
    assert!(result.retransmissions > 0, "the outage forced retries");
}

#[test]
fn declarative_fault_campaign_sweeps_protocols_through_an_outage() {
    // Every protocol in the suite survives the same declarative outage.
    let campaign = Campaign::new("outage", 41)
        .protocols(Sweep::grid([
            ("sw", ProtocolSpec::new(STOP_AND_WAIT).with_retries(1000)),
            (
                "gbn4",
                ProtocolSpec::new(GO_BACK_N)
                    .with_window(4)
                    .with_retries(1000),
            ),
            (
                "sr4",
                ProtocolSpec::new(SELECTIVE_REPEAT)
                    .with_window(4)
                    .with_retries(1000),
            ),
            ("baseline", ProtocolSpec::new(BASELINE).with_retries(1000)),
        ]))
        .links(Sweep::single("clean", LinkConfig::reliable(3)))
        .traffic(Sweep::single("8x16", TrafficPattern::messages(8, 16)))
        .seeds(Sweep::seeds(2))
        .fault(Fault::partition(40))
        .fault(Fault::repair(4_000, 3));

    let report = campaign.run(&SuiteDriver::new(), 2);
    let agg = report.aggregate();
    assert_eq!(agg.runs, 8);
    assert_eq!(agg.succeeded, 8, "all protocols ride out the partition");
}

#[test]
fn asymmetric_fault_hits_only_the_ack_path() {
    let scenario = Scenario::new(
        ProtocolSpec::new(STOP_AND_WAIT).with_timeout(60),
        LinkConfig::reliable(3),
    )
    .with_traffic(TrafficPattern::messages(8, 16))
    .with_seed(6)
    .with_fault(Fault::link(
        0,
        FaultDirection::Reverse,
        LinkConfig::lossy(3, 0.5),
    ));

    let result = SuiteDriver::new().run(&scenario).unwrap();
    assert!(result.success);
    assert!(
        result.retransmissions > 0,
        "lost acks must force retransmission"
    );
    assert_eq!(
        result.messages_delivered, 8,
        "duplicates suppressed at the receiver"
    );
}
