//! Failure injection: partitions, repairs, asymmetric impairments and
//! adversarial frames, across the protocol suite.

use netdsl::netsim::{LinkConfig, Simulator};
use netdsl::protocols::arq::session::{SwReceiver, SwSender};
use netdsl::protocols::driver::Duplex;
use netdsl::protocols::{arq, baseline};

fn msgs(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("fi-{i}").into_bytes()).collect()
}

#[test]
fn transfer_survives_a_temporary_partition() {
    // Phase 1: the link dies right after the session starts; phase 2:
    // it is repaired and the transfer completes. Retransmission carries
    // the session across the outage.
    let mut d = Duplex::new(
        5,
        LinkConfig::reliable(3),
        SwSender::new(msgs(10), 60, 1000),
        SwReceiver::new(10),
    );
    let ab = d.link_ab();
    let ba = d.link_ba();

    // Start and pump a tiny bit, then partition both directions.
    d.run(10);
    d.sim_mut().reconfigure_link(ab, LinkConfig::lossy(3, 1.0));
    d.sim_mut().reconfigure_link(ba, LinkConfig::lossy(3, 1.0));
    d.resume(5_000); // outage window: everything sent here dies
    assert!(!d.a().succeeded(), "cannot finish while partitioned");

    // Repair and finish.
    d.sim_mut().reconfigure_link(ab, LinkConfig::reliable(3));
    d.sim_mut().reconfigure_link(ba, LinkConfig::reliable(3));
    d.resume(10_000_000);
    assert!(d.a().succeeded(), "repair lets the session complete");
    assert_eq!(d.b().delivered(), &msgs(10)[..]);
}

#[test]
fn asymmetric_loss_only_acks_dropped() {
    // Data flows cleanly; every impairments falls on the ack path. The
    // sender must retransmit, and the receiver must suppress the
    // resulting duplicates.
    let mut d = Duplex::new(
        6,
        LinkConfig::reliable(3),
        SwSender::new(msgs(8), 60, 200),
        SwReceiver::new(8),
    );
    let ba = d.link_ba();
    d.sim_mut().reconfigure_link(ba, LinkConfig::lossy(3, 0.5));
    d.run(10_000_000);
    assert!(d.a().succeeded());
    assert_eq!(d.b().delivered(), &msgs(8)[..], "duplicates suppressed");
    assert!(
        d.a().stats().retransmissions > 0,
        "lost acks must force retransmission"
    );
}

#[test]
fn adversarial_garbage_frames_are_inert() {
    // A hostile third party injects random garbage at the receiver; the
    // declarative validation must reject all of it and the session must
    // still complete untainted.
    let mut sim = Simulator::new(9);
    let a = sim.add_node();
    let b = sim.add_node();
    let ab = sim.add_link(a, b, LinkConfig::reliable(1));
    // Garbage of every length 0..64, plus near-valid frames with a bad
    // checksum.
    for len in 0..64usize {
        sim.send(ab, vec![0x5A; len]);
    }
    let mut near = arq::ArqFrame::Data {
        seq: 0,
        payload: b"evil".to_vec(),
    }
    .encode();
    near[2] ^= 0xFF; // break the checksum
    sim.send(ab, near);

    // Pump manually: every delivery goes to the receiver.
    while let Some(ev) = sim.step() {
        if let netdsl::netsim::Event::Frame { payload, .. } = ev {
            assert!(
                arq::ArqFrame::decode(&payload).is_err(),
                "garbage {payload:?} must not decode"
            );
        }
    }
}

#[test]
fn extreme_jitter_reordering_is_survivable() {
    let out = arq::session::run_transfer(
        msgs(15),
        LinkConfig::reliable(2).with_jitter(40),
        11,
        200,
        100,
        50_000_000,
    );
    assert!(out.success);
    assert_eq!(out.delivered, msgs(15));
}

#[test]
fn combined_worst_case_channel() {
    let cfg = LinkConfig::reliable(4)
        .with_loss(0.25)
        .with_corrupt(0.15)
        .with_duplicate(0.15)
        .with_jitter(20);
    let out = arq::session::run_transfer(msgs(12), cfg, 17, 250, 500, 500_000_000);
    assert!(out.success, "{:?}", out.sender);
    assert_eq!(out.delivered, msgs(12));
}

#[test]
fn baseline_survives_the_same_worst_case() {
    let cfg = LinkConfig::reliable(4)
        .with_loss(0.25)
        .with_corrupt(0.15)
        .with_duplicate(0.15)
        .with_jitter(20);
    let (ok, _, delivered) = baseline::run_transfer(msgs(12), cfg, 17, 250, 500, 500_000_000);
    assert!(ok);
    assert_eq!(delivered, msgs(12));
}

#[test]
fn zero_length_and_max_length_payloads() {
    let weird = vec![Vec::new(), vec![0xFF; 1024], Vec::new(), vec![0x00; 512]];
    let out = arq::session::run_transfer(
        weird.clone(),
        LinkConfig::lossy(2, 0.2),
        19,
        80,
        50,
        50_000_000,
    );
    assert!(out.success);
    assert_eq!(out.delivered, weird);
}
