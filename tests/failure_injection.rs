//! Failure injection: partitions, repairs, asymmetric impairments and
//! adversarial frames, across the protocol suite.
//!
//! Most end-state checks are expressed declaratively through the
//! scenario layer ([`Scenario`] + [`Fault`] schedules run by
//! [`SuiteDriver`]); the imperative [`Duplex`] harness remains only
//! where a test must assert *mid-run* state, which a scenario result
//! cannot carry.

use netdsl::netsim::{LinkConfig, Simulator};
use netdsl::protocols::arq;
use netdsl::protocols::arq::session::{SwReceiver, SwSender};
use netdsl::protocols::driver::Duplex;
use netdsl::protocols::scenario::{SuiteDriver, BASELINE, STOP_AND_WAIT};
use netdsl::scenario::{
    Fault, FaultDirection, ProtocolSpec, Scenario, ScenarioDriver, TrafficPattern,
};

fn msgs(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("fi-{i}").into_bytes()).collect()
}

#[test]
fn transfer_survives_a_temporary_partition() {
    // Phase 1: the link dies right after the session starts; phase 2:
    // it is repaired and the transfer completes. Retransmission carries
    // the session across the outage.
    let mut d = Duplex::new(
        5,
        LinkConfig::reliable(3),
        SwSender::new(msgs(10), 60, 1000),
        SwReceiver::new(10),
    );
    let ab = d.link_ab();
    let ba = d.link_ba();

    // Start and pump a tiny bit, then partition both directions.
    d.run(10);
    d.sim_mut().reconfigure_link(ab, LinkConfig::lossy(3, 1.0));
    d.sim_mut().reconfigure_link(ba, LinkConfig::lossy(3, 1.0));
    d.resume(5_000); // outage window: everything sent here dies
    assert!(!d.a().succeeded(), "cannot finish while partitioned");

    // Repair and finish.
    d.sim_mut().reconfigure_link(ab, LinkConfig::reliable(3));
    d.sim_mut().reconfigure_link(ba, LinkConfig::reliable(3));
    d.resume(10_000_000);
    assert!(d.a().succeeded(), "repair lets the session complete");
    assert_eq!(d.b().delivered(), &msgs(10)[..]);
}

#[test]
fn asymmetric_loss_only_acks_dropped() {
    // Data flows cleanly; every impairment falls on the ack path. The
    // sender must retransmit, and the receiver must suppress the
    // resulting duplicates. Declarative: a Reverse-direction fault at
    // tick 0 turns the duplex link asymmetric.
    let scenario = Scenario::new(
        ProtocolSpec::new(STOP_AND_WAIT).with_timeout(60),
        LinkConfig::reliable(3),
    )
    .with_traffic(TrafficPattern::messages(8, 12))
    .with_seed(6)
    .with_fault(Fault::link(
        0,
        FaultDirection::Reverse,
        LinkConfig::lossy(3, 0.5),
    ));
    let r = SuiteDriver::new().run(&scenario).unwrap();
    assert!(r.success, "{r:?}");
    assert_eq!(r.messages_delivered, 8, "duplicates suppressed");
    assert!(r.retransmissions > 0, "lost acks must force retransmission");
}

#[test]
fn adversarial_garbage_frames_are_inert() {
    // A hostile third party injects random garbage at the receiver; the
    // declarative validation must reject all of it and the session must
    // still complete untainted.
    let mut sim = Simulator::new(9);
    let a = sim.add_node();
    let b = sim.add_node();
    let ab = sim.add_link(a, b, LinkConfig::reliable(1));
    // Garbage of every length 0..64, plus near-valid frames with a bad
    // checksum.
    for len in 0..64usize {
        sim.send(ab, vec![0x5A; len]);
    }
    let mut near = arq::ArqFrame::Data {
        seq: 0,
        payload: b"evil".to_vec(),
    }
    .encode();
    near[2] ^= 0xFF; // break the checksum
    sim.send(ab, near);

    // Pump manually: every delivery goes to the receiver.
    while let Some(ev) = sim.step() {
        if let netdsl::netsim::Event::Frame { payload, .. } = ev {
            assert!(
                arq::ArqFrame::decode(&payload).is_err(),
                "garbage {payload:?} must not decode"
            );
        }
    }
}

#[test]
fn extreme_jitter_reordering_is_survivable() {
    let scenario = Scenario::new(
        ProtocolSpec::new(STOP_AND_WAIT)
            .with_timeout(200)
            .with_retries(100),
        LinkConfig::reliable(2).with_jitter(40),
    )
    .with_traffic(TrafficPattern::messages(15, 10))
    .with_seed(11)
    .with_deadline(50_000_000);
    let r = SuiteDriver::new().run(&scenario).unwrap();
    assert!(r.success, "{r:?}");
    assert_eq!(r.messages_delivered, 15);
}

/// The worst-case channel, applied identically to the DSL ARQ and the
/// hand-rolled baseline via one scenario shape — the declarative layer
/// makes the pairing explicit.
fn worst_case(protocol: &str) -> Scenario {
    Scenario::new(
        ProtocolSpec::new(protocol)
            .with_timeout(250)
            .with_retries(500),
        LinkConfig::reliable(4)
            .with_loss(0.25)
            .with_corrupt(0.15)
            .with_duplicate(0.15)
            .with_jitter(20),
    )
    .with_traffic(TrafficPattern::messages(12, 16))
    .with_seed(17)
}

#[test]
fn combined_worst_case_channel() {
    let r = SuiteDriver::new().run(&worst_case(STOP_AND_WAIT)).unwrap();
    assert!(r.success, "{r:?}");
    assert_eq!(r.messages_delivered, 12);
}

#[test]
fn baseline_survives_the_same_worst_case() {
    let r = SuiteDriver::new().run(&worst_case(BASELINE)).unwrap();
    assert!(r.success, "{r:?}");
    assert_eq!(r.messages_delivered, 12);
}

#[test]
fn zero_length_and_max_length_payloads() {
    let weird = vec![Vec::new(), vec![0xFF; 1024], Vec::new(), vec![0x00; 512]];
    let out = arq::session::run_transfer(
        weird.clone(),
        LinkConfig::lossy(2, 0.2),
        19,
        80,
        50,
        50_000_000,
    );
    assert!(out.success);
    assert_eq!(out.delivered, weird);
}
