//! Flight-recorder parity suite: the flight recorder rides the exact
//! hook sites of the golden-trace capture, so for every committed
//! fixture the recorder's frame-level subsequence (`Send` / `Drop` /
//! `Corrupt` / `Deliver`) must mirror the golden transcript's
//! `Sent` / `Lost` / `Corrupted` / `Delivered` events one-for-one —
//! same order, same ticks, same link, same byte counts. And because
//! telemetry is **not** a parity axis, recording a flight must leave
//! the golden transcript byte-identical to the committed fixture.

use std::path::PathBuf;

use netdsl::netsim::{FlightKind, GoldenEventKind};
use netdsl::obs::FlightRecording;
use netdsl::protocols::golden::{corpus, record_multiplexed_with_flight};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// The golden kind each frame-level flight kind mirrors (`None` for
/// protocol- and timer-level kinds the golden transcript never records).
fn golden_twin(kind: FlightKind) -> Option<GoldenEventKind> {
    match kind {
        FlightKind::Send => Some(GoldenEventKind::Sent),
        FlightKind::Drop => Some(GoldenEventKind::Lost),
        FlightKind::Corrupt => Some(GoldenEventKind::Corrupted),
        FlightKind::Deliver => Some(GoldenEventKind::Delivered),
        _ => None,
    }
}

#[test]
fn flight_frame_events_mirror_every_committed_fixture() {
    for scenario in &corpus() {
        let committed = std::fs::read_to_string(fixture_path(&scenario.name)).unwrap();
        let (trace, flight) = record_multiplexed_with_flight(scenario).unwrap();
        assert_eq!(
            trace.to_json_string(),
            committed,
            "{}: installing a flight recorder changed the transcript",
            scenario.name
        );
        assert_eq!(
            flight.dropped, 0,
            "{}: fixture overflowed the default flight capacity",
            scenario.name
        );

        let frame_events: Vec<_> = flight
            .events
            .iter()
            .filter(|e| golden_twin(e.kind).is_some())
            .collect();
        assert_eq!(
            frame_events.len(),
            trace.events.len(),
            "{}: flight frame-event count diverges from the golden trace",
            scenario.name
        );
        for (flight_ev, golden_ev) in frame_events.iter().zip(&trace.events) {
            assert_eq!(
                golden_twin(flight_ev.kind),
                Some(golden_ev.kind),
                "{}: event kind order diverges at tick {}",
                scenario.name,
                golden_ev.at
            );
            assert_eq!(
                flight_ev.at, golden_ev.at,
                "{}: {:?} recorded at the wrong tick",
                scenario.name, golden_ev.kind
            );
            assert_eq!(
                flight_ev.subject, golden_ev.link as u64,
                "{}: {:?} attributed to the wrong link",
                scenario.name, golden_ev.kind
            );
            if matches!(flight_ev.kind, FlightKind::Send | FlightKind::Deliver) {
                assert_eq!(
                    flight_ev.detail,
                    golden_ev.bytes.len() as u64,
                    "{}: {:?} byte count diverges",
                    scenario.name,
                    golden_ev.kind
                );
            }
        }
    }
}

#[test]
fn flight_recordings_are_timer_aware_and_roundtrip_canonically() {
    // Beyond the frame mirror, a lossy fixture's flight holds the
    // timer-level story the golden trace omits — and the whole
    // recording survives its canonical JSON byte-for-byte.
    let scenario = corpus()
        .into_iter()
        .find(|s| s.name == "sw-loss")
        .expect("corpus names are stable");
    let (_, flight) = record_multiplexed_with_flight(&scenario).unwrap();
    let counts = flight.kind_counts();
    let of = |k: FlightKind| {
        counts
            .iter()
            .find(|(kind, _)| *kind == k)
            .map_or(0, |(_, n)| *n)
    };
    assert!(of(FlightKind::TimerSet) > 0, "ARQ arms timers");
    assert!(of(FlightKind::Drop) > 0, "lossy fixture drops frames");
    assert!(
        of(FlightKind::ArqTimeout) > 0 && of(FlightKind::Retransmit) > 0,
        "drops must surface as protocol-level timeout + retransmit events"
    );

    let json = flight.to_json_string();
    let back = FlightRecording::from_json_str(&json).expect("canonical JSON parses");
    assert_eq!(back.to_json_string(), json, "roundtrip is byte-stable");
    assert_eq!(back.events, flight.events);
    assert_eq!(
        (back.capacity, back.recorded),
        (flight.capacity, flight.recorded)
    );
}
